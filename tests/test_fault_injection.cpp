// The fault matrix: every degradation path in docs/robustness.md is exercised
// by deterministically injected faults (robust/fault_injection.h) and must
// end in a typed diagnostic — never a crash, never a silently wrong answer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "src/analysis/thread_pool.h"
#include "src/analysis/worst_case.h"
#include "src/core/power.h"
#include "src/numerics/roots.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/robust/atomic_io.h"
#include "src/robust/checkpoint.h"
#include "src/robust/diagnostics.h"
#include "src/robust/fault_injection.h"
#include "src/robust/guarded_engine.h"
#include "src/robust/invariants.h"
#include "src/sim/numeric_engine.h"
#include "src/workload/trace_io.h"

namespace speedscale {
namespace {

using robust::ErrorCode;
using robust::FaultPlan;
using robust::FaultSite;
using robust::RobustError;
using robust::RunStatus;
using robust::ScopedFaultPlan;

std::string temp_path(const std::string& name) {
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() != '/') dir += '/';
  const std::string path = dir + name;
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
  return path;
}

bool file_exists(const std::string& path) { return std::ifstream(path).good(); }

// --- Injector mechanics -----------------------------------------------------

TEST(FaultInjector, SeededPlanIsDeterministic) {
  const FaultPlan a = robust::seed_faults(42, FaultSite::kOdeSubstepNaN, 5, 1000);
  const FaultPlan b = robust::seed_faults(42, FaultSite::kOdeSubstepNaN, 5, 1000);
  const auto& sa = a.fire_at[static_cast<std::size_t>(FaultSite::kOdeSubstepNaN)];
  const auto& sb = b.fire_at[static_cast<std::size_t>(FaultSite::kOdeSubstepNaN)];
  EXPECT_EQ(sa, sb);
  EXPECT_EQ(sa.size(), 5u);
  for (const std::uint64_t i : sa) EXPECT_LT(i, 1000u);
  const FaultPlan c = robust::seed_faults(43, FaultSite::kOdeSubstepNaN, 5, 1000);
  EXPECT_NE(sa, c.fire_at[static_cast<std::size_t>(FaultSite::kOdeSubstepNaN)]);
}

TEST(FaultInjector, CountsCallsAndFires) {
  EXPECT_FALSE(robust::faults_enabled());
  {
    ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kRootBracket, {0, 2}));
    EXPECT_TRUE(robust::faults_enabled());
    auto& inj = robust::FaultInjector::instance();
    EXPECT_TRUE(robust::fault_fire(FaultSite::kRootBracket));    // index 0
    EXPECT_FALSE(robust::fault_fire(FaultSite::kRootBracket));   // index 1
    EXPECT_TRUE(robust::fault_fire(FaultSite::kRootBracket));    // index 2
    EXPECT_FALSE(robust::fault_fire(FaultSite::kRootBracket));   // index 3
    EXPECT_EQ(inj.calls(FaultSite::kRootBracket), 4u);
    EXPECT_EQ(inj.fired(FaultSite::kRootBracket), 2u);
    EXPECT_EQ(inj.calls(FaultSite::kPoolTask), 0u);
  }
  EXPECT_FALSE(robust::faults_enabled());
  EXPECT_FALSE(robust::fault_fire(FaultSite::kRootBracket));
}

// --- ODE engine: NaN substeps ----------------------------------------------

TEST(OdeFault, UnguardedEngineThrowsTypedNonfinite) {
  ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kOdeSubstepNaN, {0}));
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const PowerLaw p(2.0);
  try {
    (void)run_generic_c(inst, p);
    FAIL() << "expected RobustError";
  } catch (const RobustError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericNonfinite);
    EXPECT_NE(std::string(e.what()).find("non-finite substep"), std::string::npos);
  }
}

TEST(OdeFault, GuardedEngineRetriesAndRecovers) {
  ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kOdeSubstepNaN, {0}));
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.4, 0.7, 1.0}});
  const PowerLaw p(2.0);
  robust::GuardedNumericOptions opts;
  opts.base.substeps_per_interval = 512;
  opts.alpha = 2.0;
  const auto out = robust::run_generic_c_guarded(inst, p, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.status, RunStatus::kDegraded);
  EXPECT_EQ(out.attempts, 2);
  ASSERT_FALSE(out.diagnostics.empty());
  EXPECT_EQ(out.diagnostics.front().code, ErrorCode::kNumericNonfinite);
  // The recovered value passes the C identity (energy == fractional flow).
  const SampledRun& run = *out.value;
  EXPECT_NEAR(run.energy, run.fractional_flow, 1e-5 * std::max(1.0, run.energy));
}

TEST(OdeFault, GuardedEngineFailsWhenFaultPersists) {
  // Poison every substep of every rung: the ladder must exhaust cleanly.
  FaultPlan plan;
  auto& s = plan.fire_at[static_cast<std::size_t>(FaultSite::kOdeSubstepNaN)];
  for (std::uint64_t i = 0; i < 200000; ++i) s.insert(i);
  ScopedFaultPlan scoped(std::move(plan));
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const PowerLaw p(2.0);
  robust::GuardedNumericOptions opts;
  opts.base.substeps_per_interval = 32;
  opts.max_attempts = 3;
  auto out = robust::run_generic_c_guarded(inst, p, opts);
  EXPECT_EQ(out.status, RunStatus::kFailed);
  EXPECT_FALSE(out.ok());
  EXPECT_FALSE(out.value.has_value());
  EXPECT_EQ(out.attempts, 3);
  EXPECT_GE(out.diagnostics.size(), 3u);
  EXPECT_THROW((void)out.value_or_throw(), RobustError);
}

TEST(OdeFault, GuardedNcRecoversAndReVerifiesLemmas) {
  // The fault hits the guarded *reference* C run first; the NC outcome must
  // degrade (carrying the reference's diagnostics) yet still satisfy the
  // paper's identities after the retry.
  ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kOdeSubstepNaN, {0}));
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.6, 0.5, 1.0}});
  const PowerLaw p(alpha);
  robust::GuardedNumericOptions opts;
  opts.base.substeps_per_interval = 1024;
  opts.alpha = alpha;
  const auto out = robust::run_generic_nc_uniform_guarded(inst, p, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.status, RunStatus::kDegraded);
  ASSERT_FALSE(out.diagnostics.empty());
  // Lemma 3: NC energy equals C energy on the same instance.
  const SampledRun ref = run_generic_c(inst, p, opts.base);
  EXPECT_NEAR(out.value->energy, ref.energy, 1e-5 * std::max(1.0, ref.energy));
  // Lemma 4 (power law): fractional flow == energy / (1 - 1/alpha), up to the
  // completion-epsilon flow truncation of O(eps^{1-1/alpha}) ~ 3e-5 here.
  const double lemma4 = out.value->energy / (1.0 - 1.0 / alpha);
  EXPECT_NEAR(out.value->fractional_flow, lemma4, 1e-3 * std::max(1.0, lemma4));
}

TEST(OdeFault, CleanRunIsOkWithSingleAttempt) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const PowerLaw p(2.5);
  robust::GuardedNumericOptions opts;
  opts.base.substeps_per_interval = 512;
  opts.alpha = 2.5;
  const auto out = robust::run_generic_c_guarded(inst, p, opts);
  EXPECT_EQ(out.status, RunStatus::kOk);
  EXPECT_EQ(out.attempts, 1);
  EXPECT_TRUE(out.diagnostics.empty());
}

// --- Invariant checker ------------------------------------------------------

TEST(Invariants, FlagsPoisonedRuns) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const PowerLaw p(2.0);
  SampledRun run = run_generic_c(inst, p, {.substeps_per_interval = 512});
  robust::InvariantOptions opts;
  opts.kind = robust::RunKind::kAlgorithmC;
  EXPECT_TRUE(robust::check_sampled_run(inst, run, opts).ok());

  SampledRun nan_energy = run;
  nan_energy.energy = std::nan("");
  const auto r1 = robust::check_sampled_run(inst, nan_energy, opts);
  ASSERT_FALSE(r1.ok());
  EXPECT_EQ(r1.breaches.front().code, ErrorCode::kNumericNonfinite);

  SampledRun bad_times = run;
  ASSERT_GE(bad_times.t.size(), 2u);
  std::swap(bad_times.t.front(), bad_times.t.back());  // decreasing times
  const auto r2 = robust::check_sampled_run(inst, bad_times, opts);
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.breaches.front().code, ErrorCode::kInvariantBreach);
}

// --- Root finders -----------------------------------------------------------

TEST(RootFault, InjectedBracketFaultIsTyped) {
  ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kRootBracket, {0}));
  // A perfectly good bracket, failed by injection: the typed path fires.
  try {
    (void)numerics::bisect([](double x) { return x - 0.5; }, 0.0, 1.0, 1e-12);
    FAIL() << "expected RobustError";
  } catch (const RobustError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRootNotBracketed);
  }
}

TEST(RootFault, ExpansionRecoversFromInjectedFalseNegative) {
  // The injected fault claims "no sign change" once; one extra doubling
  // later the finder recovers and converges to the true root.
  ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kRootBracket, {0}));
  const double root =
      numerics::find_root_increasing([](double x) { return x - 10.0; }, 0.0, 20.0, 1e-12);
  EXPECT_NEAR(root, 10.0, 1e-9);
  EXPECT_EQ(robust::FaultInjector::instance().fired(FaultSite::kRootBracket), 1u);
}

TEST(RootFault, ExpansionCapHitIsTyped) {
  FaultPlan plan;
  auto& s = plan.fire_at[static_cast<std::size_t>(FaultSite::kRootBracket)];
  for (std::uint64_t i = 0; i < 64; ++i) s.insert(i);
  ScopedFaultPlan scoped(std::move(plan));
  try {
    (void)numerics::find_root_increasing([](double x) { return x - 10.0; }, 0.0, 20.0, 1e-12,
                                         /*max_expansions=*/5);
    FAIL() << "expected RobustError";
  } catch (const RobustError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kRootNotBracketed);
    EXPECT_NE(e.diagnostic().context.find("expansions="), std::string::npos);
  }
}

TEST(RootFault, BrentDegradesToBisectionOnIterationExhaustion) {
  obs::set_metrics_enabled(true);
  obs::Counter& fallbacks = obs::registry().counter("numerics.roots.brent_fallbacks");
  const std::int64_t before = fallbacks.value();
  // One Brent iteration cannot resolve this root; the fallback must.
  const double root =
      numerics::brent([](double x) { return std::cos(x) - x; }, 0.0, 1.0, 1e-13,
                      /*max_iter=*/1);
  obs::set_metrics_enabled(false);
  EXPECT_NEAR(std::cos(root), root, 1e-10);
  EXPECT_GE(fallbacks.value(), before + 1);
}

TEST(RootFault, NanProbeIsTyped) {
  try {
    (void)numerics::bisect([](double x) { return x < 0.5 ? -1.0 : std::nan(""); }, 0.0, 1.0,
                           1e-9);
    FAIL() << "expected RobustError";
  } catch (const RobustError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kNumericNonfinite);
  }
}

// --- Trace I/O --------------------------------------------------------------

Instance small_instance() {
  return Instance({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 1.0, 1.0, 1.0},
                   Job{kNoJob, 2.0, 1.0, 1.0}});
}

TEST(TraceFault, CorruptedLineIsReportedWithItsLineNumber) {
  std::ostringstream os;
  {
    // Fire on the second data line (call index 1) => file line 3.
    ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kTraceLine, {1}));
    workload::write_trace(os, small_instance());
    EXPECT_EQ(robust::FaultInjector::instance().fired(FaultSite::kTraceLine), 1u);
  }
  std::istringstream is(os.str());
  try {
    (void)workload::read_trace(is);
    FAIL() << "expected TraceIoError";
  } catch (const workload::TraceIoError& e) {
    EXPECT_EQ(e.diagnostic().code, ErrorCode::kIoMalformed);
    EXPECT_EQ(e.diagnostic().context, "line 3");
  }
}

TEST(TraceFault, LenientModeSkipsAndCounts) {
  std::ostringstream os;
  {
    ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kTraceLine, {1}));
    workload::write_trace(os, small_instance());
  }
  std::istringstream is(os.str());
  workload::TraceReadStats stats;
  const Instance got =
      workload::read_trace(is, {.mode = workload::TraceReadMode::kLenient}, &stats);
  EXPECT_EQ(got.jobs().size(), 2u);
  EXPECT_EQ(stats.lines_read, 2u);
  EXPECT_EQ(stats.lines_skipped, 1u);
}

TEST(TraceFault, RoundTripSurvivesWhenNoFaultInstalled) {
  std::ostringstream os;
  workload::write_trace(os, small_instance());
  std::istringstream is(os.str());
  const Instance got = workload::read_trace(is);
  EXPECT_EQ(got.jobs().size(), 3u);
}

// --- Thread pool ------------------------------------------------------------

TEST(PoolFault, InjectedTaskFailureRethrownAtWaitIdle) {
  ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kPoolTask, {0}));
  analysis::ThreadPool pool(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 4; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
  }
  try {
    pool.wait_idle();
    FAIL() << "expected RobustError";
  } catch (const RobustError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTaskFailed);
  }
  EXPECT_EQ(pool.failed_tasks(), 1u);
  // The pool stays usable: the error was collected, not fatal.
  pool.submit([&] { ran.fetch_add(1); });
  EXPECT_NO_THROW(pool.wait_idle());
  EXPECT_EQ(ran.load(), 4);  // 3 clean + 1 injected-away + 1 after
}

TEST(PoolFault, UserExceptionsAreCapturedAndFirstRethrown) {
  analysis::ThreadPool pool(2);
  for (int i = 0; i < 3; ++i) {
    pool.submit([] { throw std::runtime_error("task boom"); });
  }
  EXPECT_THROW(pool.wait_idle(), std::runtime_error);
  EXPECT_EQ(pool.failed_tasks(), 3u);
  EXPECT_NO_THROW(pool.wait_idle());  // error already collected
}

TEST(PoolFault, TeardownWithInFlightFailuresCannotTerminate) {
  // Destroy the pool while tasks are still failing, without wait_idle():
  // exceptions must stay captured inside workers (reaching a worker's stack
  // frame boundary would std::terminate the process).
  {
    analysis::ThreadPool pool(4);
    for (int i = 0; i < 64; ++i) {
      pool.submit([] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        throw std::runtime_error("mid-teardown boom");
      });
    }
    // ~ThreadPool drains and joins here with errors pending.
  }
  SUCCEED();
}

TEST(PoolFault, TeardownWithInjectedFaultsCannotTerminate) {
  FaultPlan plan;
  auto& s = plan.fire_at[static_cast<std::size_t>(FaultSite::kPoolTask)];
  for (std::uint64_t i = 0; i < 64; ++i) s.insert(i);
  ScopedFaultPlan scoped(std::move(plan));
  {
    analysis::ThreadPool pool(4);
    for (int i = 0; i < 32; ++i) {
      pool.submit([] { std::this_thread::sleep_for(std::chrono::microseconds(20)); });
    }
  }
  SUCCEED();
}

TEST(PoolFault, ParallelForPropagatesFirstError) {
  analysis::ThreadPool pool(2);
  EXPECT_THROW(analysis::parallel_for(pool, 8,
                                      [](std::size_t i) {
                                        if (i == 5) {
                                          throw RobustError(ErrorCode::kTaskFailed, "index 5");
                                        }
                                      }),
               RobustError);
}

// --- Worst-case search: budget + checkpoint/resume --------------------------

TEST(WorstCaseRobust, ZeroBudgetDegradesWithTypedDiagnostic) {
  analysis::WorstCaseOptions opts;
  opts.n_jobs = 2;
  opts.rounds = 4;
  opts.opt_slots = 100;
  opts.wall_clock_budget_s = 0.0;
  const auto w = analysis::find_worst_nc_instance(2.0, opts);
  EXPECT_EQ(w.status, RunStatus::kDegraded);
  EXPECT_EQ(w.rounds_completed, 0);
  ASSERT_FALSE(w.diagnostics.empty());
  bool has_budget = false;
  for (const auto& d : w.diagnostics) has_budget |= d.code == ErrorCode::kBudgetExhausted;
  EXPECT_TRUE(has_budget);
  // The best-so-far state is still a usable answer.
  EXPECT_GE(w.ratio, 0.0);
  EXPECT_EQ(w.instance.jobs().size(), 2u);
}

TEST(WorstCaseRobust, CheckpointResumeReplaysUninterruptedTrajectory) {
  const double alpha = 2.0;
  analysis::WorstCaseOptions base;
  base.n_jobs = 2;
  base.opt_slots = 120;
  base.seed = 7;

  analysis::WorstCaseOptions full = base;
  full.rounds = 4;
  const auto uninterrupted = analysis::find_worst_nc_instance(alpha, full);

  const std::string ckpt = temp_path("wc_resume.jsonl");
  analysis::WorstCaseOptions part1 = base;
  part1.rounds = 2;
  part1.checkpoint_path = ckpt;
  const auto first_half = analysis::find_worst_nc_instance(alpha, part1);
  EXPECT_EQ(first_half.rounds_completed, 2);
  ASSERT_TRUE(file_exists(ckpt));

  analysis::WorstCaseOptions part2 = base;
  part2.rounds = 4;
  part2.checkpoint_path = ckpt;
  const auto resumed = analysis::find_worst_nc_instance(alpha, part2);

  EXPECT_NEAR(resumed.ratio, uninterrupted.ratio, 1e-12 * std::max(1.0, uninterrupted.ratio));
  ASSERT_EQ(resumed.instance.jobs().size(), uninterrupted.instance.jobs().size());
  for (std::size_t i = 0; i < resumed.instance.jobs().size(); ++i) {
    EXPECT_NEAR(resumed.instance.jobs()[i].release, uninterrupted.instance.jobs()[i].release,
                1e-12);
    EXPECT_NEAR(resumed.instance.jobs()[i].volume, uninterrupted.instance.jobs()[i].volume,
                1e-12);
  }
  std::remove(ckpt.c_str());
}

TEST(WorstCaseRobust, DimensionMismatchRestartsFromSeed) {
  const std::string ckpt = temp_path("wc_mismatch.jsonl");
  robust::append_search_checkpoint(ckpt, {3, 1.5, 2.0, {1.0, 2.0}});  // 2 != 2*3-1
  analysis::WorstCaseOptions opts;
  opts.n_jobs = 3;
  opts.rounds = 1;
  opts.opt_slots = 80;
  opts.checkpoint_path = ckpt;
  const auto w = analysis::find_worst_nc_instance(2.0, opts);
  EXPECT_EQ(w.status, RunStatus::kDegraded);
  ASSERT_FALSE(w.diagnostics.empty());
  EXPECT_EQ(w.diagnostics.front().code, ErrorCode::kIoMalformed);
  EXPECT_GT(w.ratio, 0.0);  // the seeded restart still produced an answer
  std::remove(ckpt.c_str());
}

// --- Checkpoint file format -------------------------------------------------

TEST(Checkpoint, RoundTripsDoublesExactly) {
  const std::string path = temp_path("ckpt_roundtrip.jsonl");
  const std::vector<double> x = {1.0 / 3.0, 3.141592653589793, 1e-4, 9876.54321};
  robust::append_search_checkpoint(path, {5, std::sqrt(2.0), 1.8570331, x});
  const auto cp = robust::load_search_checkpoint(path);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->next_round, 5);
  EXPECT_EQ(cp->step, std::sqrt(2.0));      // exact: 17 significant digits
  EXPECT_EQ(cp->ratio, 1.8570331);
  ASSERT_EQ(cp->x.size(), x.size());
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_EQ(cp->x[i], x[i]);
  std::remove(path.c_str());
}

TEST(Checkpoint, TornAndGarbageLinesAreSkipped) {
  const std::string path = temp_path("ckpt_torn.jsonl");
  robust::append_search_checkpoint(path, {1, 2.0, 0.5, {1.0}});
  {
    std::ofstream f(path, std::ios::app);
    f << "{\"round\":2,\"step\":\n";                              // torn mid-line
    f << "utter nonsense\n";                                      // not JSON
    f << "{\"round\":3,\"step\":1.5,\"ratio\":0.7,\"x\":[]}\n";   // empty x
  }
  robust::append_search_checkpoint(path, {9, 1.25, 1.75, {4.0, 5.0}});
  std::size_t skipped = 0;
  const auto cp = robust::load_search_checkpoint(path, &skipped);
  ASSERT_TRUE(cp.has_value());
  EXPECT_EQ(cp->next_round, 9);           // the last *valid* line wins
  EXPECT_EQ(cp->x, (std::vector<double>{4.0, 5.0}));
  EXPECT_EQ(skipped, 3u);
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsNullopt) {
  EXPECT_FALSE(robust::load_search_checkpoint(temp_path("ckpt_missing.jsonl")).has_value());
}

// --- Crash-safe writes ------------------------------------------------------

TEST(AtomicIo, WriteCommitsAndRemovesTmp) {
  const std::string path = temp_path("atomic.txt");
  robust::atomic_write_file(path, [](std::ostream& os) { os << "payload\n"; });
  ASSERT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(robust::tmp_sibling(path)));
  std::ifstream f(path);
  std::string content;
  std::getline(f, content);
  EXPECT_EQ(content, "payload");
  std::remove(path.c_str());
}

TEST(AtomicIo, FailedWriteLeavesTargetUntouched) {
  const std::string path = temp_path("atomic_keep.txt");
  robust::atomic_write_file(path, [](std::ostream& os) { os << "original\n"; });
  try {
    robust::atomic_write_file(path, [](std::ostream& os) {
      os << "partial";
      os.setstate(std::ios::failbit);  // simulated disk failure
    });
    FAIL() << "expected RobustError";
  } catch (const RobustError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoMalformed);
  }
  std::ifstream f(path);
  std::string content;
  std::getline(f, content);
  EXPECT_EQ(content, "original");
  EXPECT_FALSE(file_exists(robust::tmp_sibling(path)));
  std::remove(path.c_str());
}

TEST(AtomicIo, JsonlSinkCommitsOnClose) {
  const std::string path = temp_path("sink.jsonl");
  obs::JsonlSink sink(path);
  sink.on_event(obs::TraceEvent{.kind = obs::EventKind::kPhaseBoundary, .t = 1.0});
  EXPECT_FALSE(file_exists(path));  // still streaming to the .tmp sibling
  EXPECT_TRUE(file_exists(robust::tmp_sibling(path)));
  sink.close();
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(robust::tmp_sibling(path)));
  EXPECT_NO_THROW(sink.close());  // idempotent
  EXPECT_EQ(sink.lines(), 1u);
  std::remove(path.c_str());
}

TEST(AtomicIo, JsonlSinkCommitsAtDestruction) {
  const std::string path = temp_path("sink_dtor.jsonl");
  {
    obs::JsonlSink sink(path);
    sink.on_event(obs::TraceEvent{.kind = obs::EventKind::kPhaseBoundary, .t = 2.0});
  }
  EXPECT_TRUE(file_exists(path));
  EXPECT_FALSE(file_exists(robust::tmp_sibling(path)));
  std::remove(path.c_str());
}

TEST(AtomicIo, CertCheckpointFlushSurvivesWithoutCommit) {
  // The certificate tracker checkpoints (Tracer::flush) every
  // `checkpoint_every` records, so a run killed before the JsonlSink commits
  // still leaves every flushed certificate line in the ".tmp" sibling.
  const std::string path = temp_path("cert_stream.jsonl");
  auto sink = std::make_shared<obs::JsonlSink>(path);
  const std::vector<obs::TraceEvent> stream = {
      {.kind = obs::EventKind::kJobRelease, .t = 0.0, .job = 0, .value = 1.0, .aux = 1.0},
      {.kind = obs::EventKind::kJobRelease, .t = 0.5, .job = 1, .value = 2.0, .aux = 1.0},
      {.kind = obs::EventKind::kJobComplete, .t = 1.0, .job = 0, .value = 1.5, .aux = 2.0},
      {.kind = obs::EventKind::kJobComplete, .t = 2.5, .job = 1, .value = 4.0, .aux = 6.0},
  };
  {
    obs::ScopedTracing tracing(sink);
    obs::cert::CertOptions copts;
    copts.opt_lb = obs::cert::OptLbMode::kSingleJob;
    copts.emit_trace_events = true;
    copts.checkpoint_every = 1;  // flush after every record
    (void)obs::cert::certify_events(stream, 2.0, copts);
  }
  // No close(): the "crash" happens before the atomic rename.  The final
  // artifact must not exist, but the flushed stream must be fully readable.
  EXPECT_FALSE(file_exists(path));
  std::ifstream tmp(robust::tmp_sibling(path));
  ASSERT_TRUE(tmp.is_open());
  std::size_t cert_lines = 0;
  std::string line;
  while (std::getline(tmp, line)) {
    if (line.find("cert.") != std::string::npos) ++cert_lines;
  }
  // One cert.slack + one cert.phi line per record (4 events -> 8 lines).
  EXPECT_EQ(cert_lines, 2 * stream.size());
  sink->close();
  std::remove(path.c_str());
}

// --- Observability of the guards --------------------------------------------

TEST(RobustMetrics, GuardTripsAndRecoveriesAreCounted) {
  obs::set_metrics_enabled(true);
  obs::Counter& trips = obs::registry().counter("robust.guard.trips");
  obs::Counter& recoveries = obs::registry().counter("robust.retry.recoveries");
  obs::Counter& fired = obs::registry().counter("robust.faults.fired.ode_substep_nan");
  const std::int64_t trips0 = trips.value();
  const std::int64_t rec0 = recoveries.value();
  const std::int64_t fired0 = fired.value();
  {
    ScopedFaultPlan plan(FaultPlan{}.fire(FaultSite::kOdeSubstepNaN, {0}));
    const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
    robust::GuardedNumericOptions opts;
    opts.base.substeps_per_interval = 256;
    const auto out = robust::run_generic_c_guarded(inst, PowerLaw(2.0), opts);
    EXPECT_EQ(out.status, RunStatus::kDegraded);
  }
  obs::set_metrics_enabled(false);
  EXPECT_GE(trips.value(), trips0 + 1);
  EXPECT_GE(recoveries.value(), rec0 + 1);
  EXPECT_GE(fired.value(), fired0 + 1);
}

TEST(RobustMetrics, DiagnosticNamesAreStable) {
  EXPECT_STREQ(robust::error_code_name(ErrorCode::kNumericNonfinite), "numeric_nonfinite");
  EXPECT_STREQ(robust::error_code_name(ErrorCode::kRootNotBracketed), "root_not_bracketed");
  EXPECT_STREQ(robust::error_code_name(ErrorCode::kNoConvergence), "no_convergence");
  EXPECT_STREQ(robust::error_code_name(ErrorCode::kInvariantBreach), "invariant_breach");
  EXPECT_STREQ(robust::error_code_name(ErrorCode::kIoMalformed), "io_malformed");
  EXPECT_STREQ(robust::error_code_name(ErrorCode::kTaskFailed), "task_failed");
  EXPECT_STREQ(robust::error_code_name(ErrorCode::kBudgetExhausted), "budget_exhausted");
  EXPECT_STREQ(robust::run_status_name(RunStatus::kOk), "ok");
  EXPECT_STREQ(robust::run_status_name(RunStatus::kDegraded), "degraded");
  EXPECT_STREQ(robust::run_status_name(RunStatus::kFailed), "failed");
  EXPECT_STREQ(robust::fault_site_name(FaultSite::kOdeSubstepNaN), "ode_substep_nan");
  EXPECT_STREQ(robust::fault_site_name(FaultSite::kPoolTask), "pool_task");
}

}  // namespace
}  // namespace speedscale
