// Fleet observability plane (PR 8): structured logs, cross-process trace
// correlation, merged artifacts, and the per-item cost ledger.
//
// Two layers of coverage:
//
//   * Unit: speedscale.log/1 and speedscale.fleet_events/1 lines round-trip
//     byte-stably; merge_fleet_logs re-emits records under one header;
//     fleet_chrome_trace_json renders one process track per worker
//     incarnation (including the lost-item instant of a killed one); the
//     cost ledger aggregates and round-trips its JSON document.
//
//   * Live: a real single-shard fleet with an injected
//     worker_crash_mid_shard fault, run under the deterministic clock
//     (SPEEDSCALE_LOG_FIXED_CLOCK), must produce a merged trace and merged
//     log byte-identical to committed goldens — the whole plane pinned,
//     crash included — and the correlation tags (run_id, shard, incarnation)
//     must survive the worker's death: items committed before the crash
//     carry incarnation 0, items recomputed after it carry incarnation 1,
//     in the shard log, the cost ledger, and the trace alike.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/sweep.h"
#include "src/obs/fleet/cost_ledger.h"
#include "src/obs/fleet/fleet_events.h"
#include "src/obs/fleet/fleet_trace.h"
#include "src/obs/log/logger.h"
#include "src/obs/metrics_registry.h"
#include "src/robust/supervisor/shard_log.h"
#include "src/robust/supervisor/supervisor.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

namespace rs = robust::supervisor;
namespace ol = obs::log;
namespace of = obs::fleet;

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  EXPECT_TRUE(f.is_open()) << "missing file " << path;
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

std::string fresh_dir(const std::string& tag) {
  const std::string dir = ::testing::TempDir() + "speedscale_fleet_obs_" + tag;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// --- speedscale.log/1 ----------------------------------------------------

TEST(LogSchema, RecordJsonRoundTripsByteStably) {
  ol::LogRecord record;
  record.ts = 0.003;
  record.seq = 3;
  record.level = ol::Level::kWarn;
  record.component = "robust";
  record.message = "skipped torn shard-log line(s) \"quoted\"";
  record.fields = {ol::kv("lines", std::int64_t{2}), ol::kv("path", "/tmp/a b.jsonl"),
                   ol::kv("ratio", 2.5)};
  record.tags = {"run-1", 0, 1};
  const std::string line = ol::record_json(record);
  ol::LogRecord back;
  ASSERT_TRUE(ol::parse_record(line, back));
  EXPECT_EQ(ol::record_json(back), line);  // parse inverts serialize, byte for byte
  EXPECT_EQ(back.tags.run_id, "run-1");
  EXPECT_EQ(back.tags.shard, 0);
  EXPECT_EQ(back.tags.incarnation, 1);
  EXPECT_EQ(back.level, ol::Level::kWarn);
  ASSERT_EQ(back.fields.size(), 3u);
}

TEST(LogSchema, HeaderAndTornLinesRejected) {
  ol::LogRecord out;
  EXPECT_FALSE(ol::parse_record("{\"schema\":\"speedscale.log/1\"}", out));
  EXPECT_FALSE(ol::parse_record("{\"ts\":0.001,\"level\":\"wa", out));
  EXPECT_FALSE(ol::parse_record("not json at all", out));
  EXPECT_FALSE(ol::parse_record("", out));
}

TEST(LogSchema, LevelNamesRoundTrip) {
  for (const ol::Level level : {ol::Level::kDebug, ol::Level::kInfo, ol::Level::kWarn,
                                ol::Level::kError}) {
    EXPECT_EQ(ol::level_by_name(ol::level_name(level)), level);
  }
  EXPECT_EQ(ol::level_by_name("off"), ol::Level::kOff);
  EXPECT_EQ(ol::level_by_name("no-such-level"), ol::Level::kWarn);  // conservative default
}

// --- speedscale.fleet_events/1 -------------------------------------------

TEST(FleetEvents, EventJsonRoundTripsByteStably) {
  of::FleetEvent ev;
  ev.kind = of::FleetEventKind::kItemEnd;
  ev.ts = 0.004;
  ev.run_id = "run-1";
  ev.shard = 0;
  ev.incarnation = 1;
  ev.item = 5;
  ev.wall_ms = 1.25;
  ev.detail = "resumed=2";
  const std::string line = of::fleet_event_json(ev);
  of::FleetEvent back;
  ASSERT_TRUE(of::parse_fleet_event(line, back));
  EXPECT_EQ(of::fleet_event_json(back), line);
  EXPECT_EQ(back.kind, of::FleetEventKind::kItemEnd);
  EXPECT_EQ(back.item, 5);
  EXPECT_EQ(back.detail, "resumed=2");

  of::FleetEvent none;
  EXPECT_FALSE(of::parse_fleet_event("{\"schema\":\"speedscale.fleet_events/1\"}", none));
  EXPECT_FALSE(of::parse_fleet_event("{\"detail\":\"\",\"incarn", none));
}

TEST(FleetEvents, KindNamesAreStable) {
  EXPECT_STREQ(of::fleet_event_kind_name(of::FleetEventKind::kWorkerStart), "worker_start");
  EXPECT_STREQ(of::fleet_event_kind_name(of::FleetEventKind::kHungKill), "hung_kill");
  EXPECT_STREQ(of::fleet_event_kind_name(of::FleetEventKind::kMerge), "merge");
}

TEST(FleetEvents, JournalSurvivesAppendAndLenientlyLoads) {
  const std::string dir = fresh_dir("journal");
  const std::string path = dir + "/events.jsonl";
  of::FleetEvent ev;
  ev.kind = of::FleetEventKind::kWorkerStart;
  ev.run_id = "r";
  ev.shard = 0;
  {
    of::FleetEventLog journal(path);
    journal.append(ev);
    ev.kind = of::FleetEventKind::kItemBegin;
    ev.item = 0;
    journal.append(ev);
  }
  {
    // A torn tail, as a SIGKILL mid-append would leave.
    std::ofstream f(path, std::ios::app);
    f << "{\"detail\":\"\",\"incarn";
  }
  std::size_t skipped = 0;
  const std::vector<of::FleetEvent> events = of::load_fleet_events(path, &skipped);
  EXPECT_EQ(skipped, 1u);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, of::FleetEventKind::kWorkerStart);
  EXPECT_EQ(events[1].item, 0);
  EXPECT_TRUE(of::load_fleet_events(dir + "/absent.jsonl").empty());
}

// --- Merged trace and merged log (synthetic) ------------------------------

/// A hand-built chaos shape: incarnation 0 commits item 0, begins item 1,
/// dies; incarnation 1 finishes items 1 and 3.
of::FleetTraceInput synthetic_chaos_input() {
  of::FleetTraceInput input;
  input.run_id = "syn";
  auto ev = [](of::FleetEventKind kind, double ts, long shard, long inc, std::int64_t item,
               double wall_ms, const char* detail) {
    of::FleetEvent e;
    e.kind = kind;
    e.ts = ts;
    e.run_id = "syn";
    e.shard = shard;
    e.incarnation = inc;
    e.item = item;
    e.wall_ms = wall_ms;
    e.detail = detail;
    return e;
  };
  input.supervisor_events = {
      ev(of::FleetEventKind::kSpawn, 0.000, 0, 0, -1, 0.0, "pid 100"),
      ev(of::FleetEventKind::kExit, 0.001, 0, 0, -1, 0.0, "signal 9"),
      ev(of::FleetEventKind::kRestart, 0.002, 0, 1, -1, 0.0, "backoff 5 ms"),
      ev(of::FleetEventKind::kSpawn, 0.003, 0, 1, -1, 0.0, "pid 101"),
      ev(of::FleetEventKind::kMerge, 0.004, -1, -1, 2, 0.0, "items 2"),
  };
  input.worker_events = {{
      ev(of::FleetEventKind::kWorkerStart, 0.000, 0, 0, -1, 0.0, "resumed=0"),
      ev(of::FleetEventKind::kItemBegin, 0.001, 0, 0, 0, 0.0, ""),
      ev(of::FleetEventKind::kItemEnd, 0.002, 0, 0, 0, 1.5, ""),
      ev(of::FleetEventKind::kItemBegin, 0.003, 0, 0, 1, 0.0, ""),
      // SIGKILL here: no item_end, no worker_exit.
      ev(of::FleetEventKind::kWorkerStart, 0.000, 0, 1, -1, 0.0, "resumed=1"),
      ev(of::FleetEventKind::kItemBegin, 0.001, 0, 1, 1, 0.0, ""),
      ev(of::FleetEventKind::kItemEnd, 0.002, 0, 1, 1, 2.0, ""),
      ev(of::FleetEventKind::kWorkerExit, 0.003, 0, 1, -1, 0.0, "ok"),
  }};
  return input;
}

TEST(FleetTrace, RendersOneProcessTrackPerIncarnation) {
  const std::string trace = of::fleet_chrome_trace_json(synthetic_chaos_input());
  EXPECT_NE(trace.find("\"supervisor\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker shard 0 inc 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker shard 0 inc 1\""), std::string::npos);
  // The killed incarnation's in-flight item renders as an explicit loss.
  EXPECT_NE(trace.find("item 1 (lost)"), std::string::npos);
  // The recomputed item is a complete slice on the second incarnation.
  EXPECT_NE(trace.find("\"item 1\""), std::string::npos);
  // Deterministic: equal inputs, equal bytes.
  EXPECT_EQ(of::fleet_chrome_trace_json(synthetic_chaos_input()), trace);
}

TEST(FleetTrace, MergeFleetLogsKeepsOneHeaderAndAllRecords) {
  const std::string dir = fresh_dir("merge");
  auto write_log = [&](const std::string& name, long shard, const char* message) {
    ol::LogRecord record;
    record.level = ol::Level::kInfo;
    record.component = "test";
    record.message = message;
    record.tags = {"m", shard, 0};
    std::ofstream f(dir + "/" + name);
    f << "{\"schema\":\"speedscale.log/1\"}\n" << ol::record_json(record) << "\n";
    f << "{\"ts\":0.0,\"torn";  // torn tail must be dropped, not merged
  };
  write_log("sup.jsonl", -1, "supervisor record");
  write_log("s0.jsonl", 0, "shard record");
  const std::string out = dir + "/merged.jsonl";
  const std::size_t n =
      of::merge_fleet_logs(out, dir + "/sup.jsonl", {dir + "/s0.jsonl", dir + "/absent.jsonl"});
  EXPECT_EQ(n, 2u);
  const std::string merged = read_file(out);
  std::istringstream lines(merged);
  std::string line;
  std::vector<std::string> all;
  while (std::getline(lines, line)) all.push_back(line);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0], "{\"schema\":\"speedscale.log/1\"}");
  ol::LogRecord first, second;
  ASSERT_TRUE(ol::parse_record(all[1], first));
  ASSERT_TRUE(ol::parse_record(all[2], second));
  EXPECT_EQ(first.message, "supervisor record");  // supervisor first, then shards
  EXPECT_EQ(second.message, "shard record");
  EXPECT_EQ(second.tags.shard, 0);
}

// --- Cost ledger ----------------------------------------------------------

std::vector<of::CostRow> synthetic_rows() {
  std::vector<of::CostRow> rows;
  of::CostRow r;
  r.index = 1;
  r.shard = 0;
  r.incarnation = 1;  // committed after a restart
  r.wall_ms = 5.0;
  r.work = {{"sim.segments", 4}, {"opt.cache.hits", 1}};
  rows.push_back(r);
  r = {};
  r.index = 0;
  r.shard = 0;
  r.incarnation = 0;
  r.wall_ms = 2.0;
  r.work = {{"sim.segments", 3}};
  rows.push_back(r);
  r = {};
  r.index = 2;
  r.shard = 1;
  r.incarnation = 0;
  r.wall_ms = 1.0;
  r.work = {{"sim.segments", 2}};
  rows.push_back(r);
  return rows;
}

TEST(CostLedger, AggregatesShardsAndAttributesRestarts) {
  const of::FleetCostReport report = of::build_cost_report(synthetic_rows(), "run-1");
  EXPECT_EQ(report.run_id, "run-1");
  EXPECT_EQ(report.items, 3);
  EXPECT_DOUBLE_EQ(report.wall_ms, 8.0);
  EXPECT_EQ(report.work_units, 10);
  EXPECT_EQ(report.counters.at("sim.segments"), 9);
  EXPECT_EQ(report.counters.at("opt.cache.hits"), 1);
  ASSERT_EQ(report.rows.size(), 3u);
  EXPECT_EQ(report.rows[0].index, 0);  // sorted by index regardless of input order
  ASSERT_EQ(report.shards.size(), 2u);
  EXPECT_EQ(report.shards[0].shard, 0);
  EXPECT_EQ(report.shards[0].items, 2);
  EXPECT_EQ(report.shards[0].restarts, 1);  // incarnations {0,1} seen -> one restart
  EXPECT_EQ(report.shards[0].max_item, 1);
  EXPECT_DOUBLE_EQ(report.shards[0].max_item_wall_ms, 5.0);
  EXPECT_EQ(report.shards[1].restarts, 0);
}

TEST(CostLedger, JsonRoundTripsByteStably) {
  const of::FleetCostReport report = of::build_cost_report(synthetic_rows(), "run-1");
  const std::string doc = report.to_json();
  const of::FleetCostReport back = of::parse_cost_report(doc);
  EXPECT_EQ(back.to_json(), doc);
  EXPECT_EQ(back.items, report.items);
  EXPECT_EQ(back.rows.size(), report.rows.size());
  EXPECT_EQ(back.shards.size(), report.shards.size());
  EXPECT_THROW((void)of::parse_cost_report("{\"schema\":\"nope\"}"), robust::RobustError);
  EXPECT_THROW((void)of::parse_cost_report("not json"), robust::RobustError);
}

TEST(CostLedger, TableNamesTheCostliestItems) {
  const std::string table = of::build_cost_report(synthetic_rows(), "run-1").table(2);
  EXPECT_NE(table.find("shard"), std::string::npos);
  EXPECT_NE(table.find("run-1"), std::string::npos);
  // The top-items section leads with item 1 (5.0 ms), the costliest.
  const std::size_t top = table.find("top items");
  ASSERT_NE(top, std::string::npos);
  EXPECT_NE(table.find("restarts"), std::string::npos);
}

// --- Live fleet: golden chaos artifacts and tag survival ------------------

std::vector<analysis::SuitePoint> pinned_grid() {
  std::vector<analysis::SuitePoint> points;
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    points.push_back(
        {workload::generate({.n_jobs = 6, .arrival_rate = 2.0, .seed = seed}), 2.0});
  }
  return points;
}

analysis::SuiteOptions pinned_suite_options() {
  analysis::SuiteOptions suite;
  suite.include_nonuniform = false;
  suite.certify = true;
  suite.opt_slots = 120;
  return suite;
}

rs::FleetOptions chaos_options(const std::string& dir) {
  rs::FleetOptions options;
  options.worker_binary = SPEEDSCALE_SWEEP_WORKER;
  options.work_dir = dir;
  options.poll_ms = 5;
  options.backoff_base_ms = 5;
  options.backoff_cap_ms = 50;
  // Crash the first incarnation at its third uncommitted item (item 2 of a
  // single-shard run): items 0-1 commit under incarnation 0, items 2-3
  // under incarnation 1.
  options.first_spawn_args = {"--fault", "worker_crash_mid_shard@2"};
  options.obs.enabled = true;
  return options;
}

/// Pids vary per run; everything else in the plane's artifacts must not.
std::string normalize_pids(std::string s) {
  std::size_t at = 0;
  while ((at = s.find("pid ", at)) != std::string::npos) {
    std::size_t digits = at + 4;
    while (digits < s.size() && std::isdigit(static_cast<unsigned char>(s[digits]))) {
      ++digits;
    }
    s.replace(at + 4, digits - (at + 4), "#");
    at += 4;
  }
  return s;
}

void expect_matches_golden(const std::string& actual, const std::string& golden_name) {
  const std::string golden_path =
      std::string(SPEEDSCALE_TEST_DATA_DIR) + "/golden/" + golden_name;
  const std::string expected = read_file(golden_path);
  if (actual != expected) {
    const std::string dump = ::testing::TempDir() + golden_name + ".actual";
    std::ofstream(dump) << actual;
    FAIL() << "fleet artifact drifted from " << golden_path << "\nactual written to " << dump;
  }
}

/// Scoped deterministic-clock install: in-process (the supervisor side) and
/// via the environment (inherited by fork/exec'd workers).
struct FixedClockScope {
  FixedClockScope() {
    ::setenv("SPEEDSCALE_LOG_FIXED_CLOCK", "1", 1);
    ol::Logger::instance().close();  // detach any sink a previous test opened
    ol::Logger::instance().set_fixed_clock(true);
  }
  ~FixedClockScope() {
    ol::Logger::instance().close();
    ol::Logger::instance().set_fixed_clock(false);
    ::unsetenv("SPEEDSCALE_LOG_FIXED_CLOCK");
  }
};

TEST(FleetObs, GoldenChaosRunTraceAndLogByteStable) {
  const FixedClockScope clock;
  const std::string dir = fresh_dir("golden");
  obs::set_metrics_enabled(true);
  obs::registry().reset_all();
  const rs::FleetResult result = rs::run_suite_sweep_fleet(
      pinned_grid(), pinned_suite_options(), /*workers=*/1, chaos_options(dir));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.restarts, 1);

  expect_matches_golden(normalize_pids(read_file(dir + "/fleet_trace.json")),
                        "fleet_trace_golden.json");
  expect_matches_golden(normalize_pids(read_file(dir + "/fleet_log.jsonl")),
                        "fleet_log_golden.jsonl");
}

TEST(FleetObs, TagsSurviveWorkerDeathAndRestart) {
  ol::Logger::instance().close();  // own sink per live test
  const std::string dir = fresh_dir("tags");
  obs::set_metrics_enabled(true);
  obs::registry().reset_all();
  rs::FleetOptions options = chaos_options(dir);
  options.obs.run_id = "tags-run";
  const rs::FleetResult result = rs::run_suite_sweep_fleet(
      pinned_grid(), pinned_suite_options(), /*workers=*/1, options);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.restarts, 1);

  // Shard-log lines carry the committing incarnation across the crash.
  const auto logged = rs::load_shard_log(dir + "/shard_0.jsonl");
  ASSERT_EQ(logged.size(), 4u);
  EXPECT_EQ(logged.at(0).incarnation, 0);
  EXPECT_EQ(logged.at(1).incarnation, 0);
  EXPECT_EQ(logged.at(2).incarnation, 1);  // recomputed by the restart
  EXPECT_EQ(logged.at(3).incarnation, 1);
  for (const auto& [index, item] : logged) EXPECT_EQ(item.shard, 0) << "item " << index;

  // ...into the cost ledger, attributed per incarnation.
  ASSERT_EQ(result.cost.items, 4);
  EXPECT_EQ(result.cost.run_id, "tags-run");
  EXPECT_EQ(result.cost.rows[0].incarnation, 0);
  EXPECT_EQ(result.cost.rows[3].incarnation, 1);
  ASSERT_EQ(result.cost.shards.size(), 1u);
  EXPECT_EQ(result.cost.shards[0].restarts, 1);
  EXPECT_GT(result.cost.shards[0].wall_ms, 0.0);

  // ...and into the merged trace: both incarnations render as tracks, and
  // the crashed incarnation's in-flight item is explicitly lost.
  const std::string trace = read_file(dir + "/fleet_trace.json");
  EXPECT_NE(trace.find("\"worker shard 0 inc 0\""), std::string::npos);
  EXPECT_NE(trace.find("\"worker shard 0 inc 1\""), std::string::npos);
  EXPECT_NE(trace.find("item 2 (lost)"), std::string::npos);

  // Every merged log record carries the run's correlation tags.
  std::ifstream merged(dir + "/fleet_log.jsonl");
  std::string line;
  std::size_t records = 0, worker_records = 0;
  while (std::getline(merged, line)) {
    ol::LogRecord record;
    if (!ol::parse_record(line, record)) continue;
    ++records;
    EXPECT_EQ(record.tags.run_id, "tags-run");
    if (record.tags.shard == 0) ++worker_records;
  }
  EXPECT_GE(records, 4u);         // supervisor start/merge + two incarnations
  EXPECT_GE(worker_records, 2u);  // both incarnations logged their start

  // The cost ledger is embedded in fleet_state.json next to the run.
  const std::string state = read_file(dir + "/fleet_state.json");
  EXPECT_NE(state.find("\"cost\":"), std::string::npos);
  EXPECT_NE(state.find("speedscale.fleet_cost/1"), std::string::npos);
}

}  // namespace
}  // namespace speedscale
