// Tests for workload generators, adversarial instances, the Section 7
// geometric-density fact, and the analysis harness utilities.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <atomic>

#include <algorithm>

#include "src/algo/algorithm_c.h"
#include "src/analysis/ascii_chart.h"
#include "src/analysis/export.h"
#include "src/analysis/ratio_harness.h"
#include "src/analysis/table.h"
#include "src/analysis/thread_pool.h"
#include "src/workload/adversarial.h"
#include "src/workload/generators.h"
#include "src/workload/trace_io.h"

namespace speedscale {
namespace {

TEST(Generators, DeterministicInSeed) {
  const workload::WorkloadParams p{.n_jobs = 20, .seed = 99};
  const Instance a = workload::generate(p);
  const Instance b = workload::generate(p);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].release, b.jobs()[i].release);
    EXPECT_DOUBLE_EQ(a.jobs()[i].volume, b.jobs()[i].volume);
  }
  const Instance c = workload::generate({.n_jobs = 20, .seed = 100});
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a.jobs()[i].volume != c.jobs()[i].volume) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Generators, AllVolumeDistributionsProduceValidJobs) {
  using workload::VolumeDist;
  for (VolumeDist d : {VolumeDist::kUniform, VolumeDist::kExponential, VolumeDist::kPareto,
                       VolumeDist::kLognormal, VolumeDist::kFixed}) {
    const Instance inst = workload::generate({.n_jobs = 50, .volume_dist = d, .seed = 7});
    EXPECT_EQ(inst.size(), 50u);
    for (const Job& j : inst.jobs()) EXPECT_GT(j.volume, 0.0);
  }
}

TEST(Generators, DensityModes) {
  using workload::DensityMode;
  const Instance unit = workload::generate({.n_jobs = 10, .seed = 1});
  EXPECT_TRUE(unit.uniform_density());
  const Instance classes = workload::generate({.n_jobs = 200,
                                               .density_mode = DensityMode::kClasses,
                                               .density_classes = 4,
                                               .density_spread = 8.0,
                                               .seed = 2});
  EXPECT_FALSE(classes.uniform_density());
  EXPECT_GE(classes.min_density(), 1.0 - 1e-12);
  EXPECT_LE(classes.max_density(), 8.0 + 1e-9);
}

TEST(Generators, BatchAtZero) {
  const Instance b = workload::batch_at_zero(12, workload::VolumeDist::kFixed, 2.0, 0.0, 3);
  for (const Job& j : b.jobs()) {
    EXPECT_DOUBLE_EQ(j.release, 0.0);
    EXPECT_DOUBLE_EQ(j.volume, 2.0);
  }
}

TEST(Generators, CloudTraceHasTwoClasses) {
  const Instance c = workload::cloud_trace({});
  EXPECT_EQ(c.size(), 32u);
  int hi = 0, lo = 0;
  for (const Job& j : c.jobs()) {
    if (j.density == 8.0) ++hi;
    if (j.density == 1.0) ++lo;
  }
  EXPECT_EQ(hi, 24);
  EXPECT_EQ(lo, 8);
}

TEST(Generators, DiurnalTraceShape) {
  const Instance a = workload::diurnal_trace({.n_jobs = 300, .base_rate = 2.0, .seed = 4});
  EXPECT_EQ(a.size(), 300u);
  // Deterministic in seed.
  const Instance b = workload::diurnal_trace({.n_jobs = 300, .base_rate = 2.0, .seed = 4});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.jobs()[i].release, b.jobs()[i].release);
  }
  // Releases strictly ordered (thinning preserves monotone arrival times).
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GT(a.jobs()[i].release, a.jobs()[i - 1].release);
  }
  EXPECT_THROW(workload::diurnal_trace({.amplitude = 1.0}), ModelError);
}

TEST(Generators, DiurnalAmplitudeModulatesArrivals) {
  // With a strong diurnal swing, arrivals cluster in the high-rate half of
  // the period: compare the variance of per-phase counts.
  const double period = 10.0;
  const Instance flat =
      workload::diurnal_trace({.n_jobs = 2000, .amplitude = 0.0, .period = period, .seed = 8});
  const Instance wavy =
      workload::diurnal_trace({.n_jobs = 2000, .amplitude = 0.9, .period = period, .seed = 8});
  const auto peak_fraction = [&](const Instance& inst) {
    int peak = 0;
    for (const Job& j : inst.jobs()) {
      const double phase = std::fmod(j.release, period) / period;
      if (phase < 0.5) ++peak;  // sin > 0 half of the cycle
    }
    return static_cast<double>(peak) / static_cast<double>(inst.size());
  };
  EXPECT_NEAR(peak_fraction(flat), 0.5, 0.05);
  EXPECT_GT(peak_fraction(wavy), 0.6);
}

TEST(Export, SpeedProfileAndJobSummary) {
  const Instance inst = workload::generate({.n_jobs = 5, .seed = 2});
  const RunResult c = run_c(inst, 2.0);
  std::ostringstream prof;
  analysis::export_speed_profile(prof, c.schedule, 16);
  const std::string p = prof.str();
  EXPECT_NE(p.find("t,speed,power"), std::string::npos);
  EXPECT_EQ(std::count(p.begin(), p.end(), '\n'), 18);  // header + 17 samples
  std::ostringstream jobs;
  analysis::export_job_summary(jobs, inst, c.schedule);
  const std::string js = jobs.str();
  EXPECT_NE(js.find("job,release"), std::string::npos);
  EXPECT_EQ(std::count(js.begin(), js.end(), '\n'), 6);
}

TEST(Adversarial, SoloCostClosedFormMatchesSimulation) {
  const double alpha = 2.5;
  for (double rho : {1.0, 4.0, 16.0}) {
    const double vol = workload::volume_for_solo_cost(3.0, rho, alpha);
    const Instance one({Job{kNoJob, 0.0, vol, rho}});
    const RunResult c = run_c(one, alpha);
    EXPECT_NEAR(c.metrics.fractional_objective(), 3.0, 1e-9);
    EXPECT_NEAR(workload::c_solo_cost(vol, rho, alpha), 3.0, 1e-9);
  }
}

// Section 7's fact: l jobs with geometric densities (ratio rho >= 4), each of
// solo cost c, cost at most 4*l*c on a single machine.
class Sec7Fact : public ::testing::TestWithParam<std::tuple<double, int, double>> {};

TEST_P(Sec7Fact, SingleMachineCostAtMostFourLC) {
  const auto [alpha, l, rho] = GetParam();
  const double solo = 1.0;
  const Instance inst = workload::geometric_density_instance(l, rho, solo, alpha);
  const RunResult c = run_c(inst, alpha);
  EXPECT_LE(c.metrics.fractional_objective(), 4.0 * l * solo * (1.0 + 1e-9))
      << "alpha=" << alpha << " l=" << l << " rho=" << rho;
  // And it cannot be cheaper than one machine per job.
  EXPECT_GE(c.metrics.fractional_objective(), l * solo * 0.49);
}

INSTANTIATE_TEST_SUITE_P(Grid, Sec7Fact,
                         ::testing::Combine(::testing::Values(2.0, 3.0),
                                            ::testing::Values(2, 4, 8),
                                            ::testing::Values(4.0, 8.0)));

TEST(Adversarial, FifoHdfConflictInstanceShape) {
  const Instance inst = workload::fifo_hdf_conflict_instance(3, 4, 20.0);
  EXPECT_EQ(inst.size(), 13u);
  EXPECT_DOUBLE_EQ(inst.jobs()[0].density, 1.0);
  EXPECT_DOUBLE_EQ(inst.max_density(), 20.0);
}

TEST(ThreadPool, RunsAllTasks) {
  analysis::ThreadPool pool(4);
  std::atomic<int> counter{0};
  analysis::parallel_for(pool, 1000, [&](std::size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, ParallelResultsMatchSerial) {
  analysis::ThreadPool pool(4);
  std::vector<double> out(64, 0.0);
  analysis::parallel_for(pool, out.size(), [&](std::size_t i) {
    const Instance inst = workload::generate({.n_jobs = 6, .seed = i + 1});
    out[i] = run_c(inst, 2.0).metrics.fractional_objective();
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    const Instance inst = workload::generate({.n_jobs = 6, .seed = i + 1});
    EXPECT_DOUBLE_EQ(out[i], run_c(inst, 2.0).metrics.fractional_objective());
  }
}

TEST(Table, FormatsAlignedColumns) {
  analysis::Table t({"name", "value"});
  t.add_row({"alpha", analysis::Table::cell(2.0)});
  t.add_row({"longer-name", analysis::Table::cell(123456.0, 4)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
  EXPECT_NE(s.find("1.235e+05"), std::string::npos);
}

TEST(AsciiChart, RendersWithoutCrashing) {
  std::ostringstream os;
  analysis::plot(os, {{"line", {0.0, 1.0, 2.0}, {0.0, 1.0, 4.0}, '*'}}, 40, 10, "test");
  EXPECT_NE(os.str().find('*'), std::string::npos);
  std::ostringstream empty;
  analysis::plot(empty, {}, 40, 10);
  EXPECT_NE(empty.str().find("no data"), std::string::npos);
}

TEST(TraceIO, RoundTripPreservesEveryJobExactly) {
  const Instance orig = workload::generate({.n_jobs = 40,
                                            .arrival_rate = 2.0,
                                            .volume_dist = workload::VolumeDist::kLognormal,
                                            .density_mode = workload::DensityMode::kLogUniform,
                                            .seed = 21});
  std::stringstream ss;
  workload::write_trace(ss, orig);
  const Instance back = workload::read_trace(ss);
  ASSERT_EQ(back.size(), orig.size());
  for (std::size_t i = 0; i < orig.size(); ++i) {
    // setprecision(17) round-trips doubles bit-exactly.
    EXPECT_DOUBLE_EQ(back.jobs()[i].release, orig.jobs()[i].release);
    EXPECT_DOUBLE_EQ(back.jobs()[i].volume, orig.jobs()[i].volume);
    EXPECT_DOUBLE_EQ(back.jobs()[i].density, orig.jobs()[i].density);
    // Loading reassigns contiguous ids in file order (Instance invariant).
    EXPECT_EQ(back.jobs()[i].id, static_cast<JobId>(i));
  }
}

TEST(TraceIO, ZeroVolumeRowIsRejected) {
  // A zero-volume job breaks every density/weight identity; the Instance
  // constructor must refuse it at load time, not during a later run.
  std::stringstream ss("id,release,volume,density\n0,0.0,0.0,1.0\n");
  EXPECT_THROW((void)workload::read_trace(ss), ModelError);
  std::stringstream neg("id,release,volume,density\n0,0.0,-1.0,1.0\n");
  EXPECT_THROW((void)workload::read_trace(neg), ModelError);
}

TEST(TraceIO, IdenticalReleaseTimesSurviveRoundTrip) {
  // Release-time ties are semantically meaningful (the simulators resolve
  // them as the limit of infinitesimally-separated releases), so a trace
  // with ties must reload with the ties — and the file order — intact.
  const Instance orig({Job{kNoJob, 1.0, 0.5, 1.0}, Job{kNoJob, 1.0, 2.0, 1.0},
                       Job{kNoJob, 1.0, 0.25, 1.0}, Job{kNoJob, 3.0, 1.0, 1.0}});
  std::stringstream ss;
  workload::write_trace(ss, orig);
  const Instance back = workload::read_trace(ss);
  ASSERT_EQ(back.size(), 4u);
  EXPECT_DOUBLE_EQ(back.jobs()[0].release, 1.0);
  EXPECT_DOUBLE_EQ(back.jobs()[1].release, 1.0);
  EXPECT_DOUBLE_EQ(back.jobs()[2].release, 1.0);
  EXPECT_DOUBLE_EQ(back.jobs()[1].volume, 2.0);
  // FIFO order breaks the tie by id, which follows file order.
  const std::vector<JobId> fifo = back.fifo_order();
  EXPECT_EQ(fifo[0], 0);
  EXPECT_EQ(fifo[1], 1);
  EXPECT_EQ(fifo[2], 2);
  EXPECT_EQ(fifo[3], 3);
}

TEST(RatioHarness, UniformSuiteIncludesExpectedRows) {
  const Instance inst = workload::generate({.n_jobs = 8, .seed = 4});
  const analysis::SuiteResult r = analysis::run_suite(inst, 2.0, {.opt_slots = 300});
  ASSERT_TRUE(r.opt_fractional.has_value());
  bool has_c = false, has_nc = false;
  for (const auto& o : r.outcomes) {
    if (o.name == "C (clairvoyant)") {
      has_c = true;
      EXPECT_GE(r.frac_ratio(o), 0.9);
      EXPECT_LE(r.frac_ratio(o), 2.1);
    }
    if (o.name == "NC (uniform)") has_nc = true;
  }
  EXPECT_TRUE(has_c);
  EXPECT_TRUE(has_nc);
}

TEST(RatioHarness, SuiteObservabilityExportsMetricsAndProfile) {
  const Instance inst = workload::generate({.n_jobs = 6, .seed = 5});
  (void)analysis::run_suite(inst, 2.0, {.opt_slots = 200});
  std::ostringstream os;
  analysis::write_suite_observability(os);
  const std::string json = os.str();
  // One JSON object bundling the registry snapshot and the per-algorithm
  // profiler breakdown (run_suite times each algorithm under "suite.*").
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"profile\""), std::string::npos);
  EXPECT_NE(json.find("\"suite.c\""), std::string::npos);
  EXPECT_NE(json.find("\"suite.nc_uniform\""), std::string::npos);
  EXPECT_NE(json.find("\"suite.opt\""), std::string::npos);
}

}  // namespace
}  // namespace speedscale
