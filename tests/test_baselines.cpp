// Tests for the baseline schedulers (algo/baselines.h).
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/baselines.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

TEST(FixedSpeed, HandComputableCase) {
  const Instance inst({Job{kNoJob, 0.0, 2.0, 1.0}});
  const RunResult r = run_fixed_speed(inst, 2.0, 2.0);
  // Processing takes 1s at speed 2: energy 4, Fint = 2*1, Ffrac = int(2-2t) = 1.
  EXPECT_NEAR(r.metrics.energy, 4.0, 1e-12);
  EXPECT_NEAR(r.metrics.integral_flow, 2.0, 1e-12);
  EXPECT_NEAR(r.metrics.fractional_flow, 1.0, 1e-12);
  EXPECT_NEAR(r.schedule.completion(0), 1.0, 1e-12);
}

TEST(FixedSpeed, IdlesBetweenSparseArrivals) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 5.0, 1.0, 1.0}});
  const RunResult r = run_fixed_speed(inst, 2.0, 1.0);
  EXPECT_NEAR(r.schedule.completion(0), 1.0, 1e-12);
  EXPECT_NEAR(r.schedule.completion(1), 6.0, 1e-12);
  EXPECT_NEAR(r.metrics.energy, 2.0, 1e-12);
}

TEST(FixedSpeed, RejectsNonPositiveSpeed) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  EXPECT_THROW(run_fixed_speed(inst, 2.0, 0.0), ModelError);
}

TEST(ActiveCount, SingleJobClosedForm) {
  // One active job: P = 1, speed = 1, duration = V.
  const Instance inst({Job{kNoJob, 0.0, 3.0, 1.0}});
  const SharedRun r = run_active_count(inst, 2.0);
  EXPECT_NEAR(r.completions.at(0), 3.0, 1e-12);
  EXPECT_NEAR(r.metrics.energy, 3.0, 1e-12);
  // Ffrac = int_0^3 (3 - t) dt = 4.5.
  EXPECT_NEAR(r.metrics.fractional_flow, 4.5, 1e-12);
  EXPECT_NEAR(r.metrics.integral_flow, 9.0, 1e-12);
}

TEST(ActiveCount, TwoEqualJobsShareEvenly) {
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 1.0, 1.0}});
  const SharedRun r = run_active_count(inst, alpha);
  // Phase 1: n=2, speed sqrt(2), each at rate sqrt(2)/2, both finish
  // together at t = 2/sqrt(2) = sqrt(2).
  EXPECT_NEAR(r.completions.at(0), std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(r.completions.at(1), std::sqrt(2.0), 1e-9);
  EXPECT_NEAR(r.metrics.energy, 2.0 * std::sqrt(2.0), 1e-9);
}

TEST(ActiveCount, EnergyEqualsQuadrature) {
  const Instance inst = workload::generate({.n_jobs = 12, .arrival_rate = 2.0, .seed = 10});
  const SharedRun r = run_active_count(inst, 3.0);
  EXPECT_GT(r.metrics.energy, 0.0);
  EXPECT_GT(r.makespan, 0.0);
  // All jobs complete.
  EXPECT_EQ(r.completions.size(), inst.size());
}

TEST(Laps, SingleJobMatchesActiveCount) {
  const Instance inst({Job{kNoJob, 0.0, 3.0, 1.0}});
  const SharedRun ps = run_active_count(inst, 2.0);
  const SharedRun laps = run_laps(inst, 2.0, 0.5);
  EXPECT_NEAR(laps.completions.at(0), ps.completions.at(0), 1e-12);
  EXPECT_NEAR(laps.metrics.fractional_objective(), ps.metrics.fractional_objective(), 1e-12);
}

TEST(Laps, BetaOneDegeneratesToActiveCount) {
  const Instance inst = workload::generate({.n_jobs = 14, .arrival_rate = 2.0, .seed = 4});
  const SharedRun ps = run_active_count(inst, 2.5);
  const SharedRun laps = run_laps(inst, 2.5, 1.0);
  EXPECT_NEAR(laps.metrics.fractional_objective(), ps.metrics.fractional_objective(),
              1e-9 * ps.metrics.fractional_objective());
}

TEST(Laps, ServesLatestArrivalsFirst) {
  // Two jobs; the second arrives while the first still runs: with
  // beta = 0.5 LAPS serves ONLY the newer job until it completes.
  const Instance inst({Job{kNoJob, 0.0, 2.0, 1.0}, Job{kNoJob, 0.5, 0.2, 1.0}});
  const SharedRun laps = run_laps(inst, 2.0, 0.5);
  EXPECT_LT(laps.completions.at(1), laps.completions.at(0));
  // Job 1 is served alone at speed sqrt(2) from t = 0.5.
  EXPECT_NEAR(laps.completions.at(1), 0.5 + 0.2 / std::sqrt(2.0), 1e-9);
}

TEST(Laps, CompletesEverythingAcrossSeeds) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Instance inst = workload::generate({.n_jobs = 20, .arrival_rate = 3.0, .seed = seed});
    const SharedRun laps = run_laps(inst, 2.0, 0.4);
    EXPECT_EQ(laps.completions.size(), inst.size());
    EXPECT_TRUE(std::isfinite(laps.metrics.fractional_objective()));
  }
}

TEST(Laps, RejectsBadBeta) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  EXPECT_THROW(run_laps(inst, 2.0, 0.0), ModelError);
  EXPECT_THROW(run_laps(inst, 2.0, 1.5), ModelError);
}

TEST(Wrr, SingleJobRunsAtFullWeightPower) {
  // One active job of weight W: speed = W^{1/alpha}, constant (the full
  // weight is known and does not shrink as the job is processed).
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 2.0, 1.0}});  // W = 2
  const SharedRun r = run_wrr_known_weight(inst, alpha);
  const double s = std::sqrt(2.0);
  EXPECT_NEAR(r.completions.at(0), 2.0 / s, 1e-12);
  EXPECT_NEAR(r.metrics.energy, 2.0 * (2.0 / s), 1e-12);
}

TEST(Wrr, SharesProportionallyToWeight) {
  // Two jobs at t=0 with weights 1 and 3 (unit density): the heavy one gets
  // a 3x speed share; both finish simultaneously at t = 4 / P^{-1}(4) = 2.
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 3.0, 1.0}});
  const SharedRun r = run_wrr_known_weight(inst, 2.0);
  EXPECT_NEAR(r.completions.at(0), 2.0, 1e-9);
  EXPECT_NEAR(r.completions.at(1), 2.0, 1e-9);
}

TEST(Wrr, BatchCompetitivenessMatchesLamEtAl) {
  // [7]'s (2 - 1/alpha)^2 guarantee is for jobs all released at time 0.
  const double alpha = 2.0;
  const double bound = (2.0 - 1.0 / alpha) * (2.0 - 1.0 / alpha);  // 2.25
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    const Instance batch =
        workload::batch_at_zero(10, workload::VolumeDist::kExponential, 1.0, 0.0, seed);
    const SharedRun wrr = run_wrr_known_weight(batch, alpha);
    // Compare against the clairvoyant C (2-competitive), giving an implied
    // bound vs OPT of 2 * ratio; assert the direct [7] bound with OPT >=
    // C/2: wrr/opt <= 2 * wrr/C... conservatively check wrr <= bound * C.
    const RunResult c = run_c(batch, alpha);
    EXPECT_LE(wrr.metrics.fractional_objective(),
              bound * c.metrics.fractional_objective() * (1.0 + 1e-9))
        << "seed " << seed;
  }
}

TEST(Wrr, CompletesEverythingWithArrivals) {
  const Instance inst = workload::generate({.n_jobs = 18, .arrival_rate = 2.5, .seed = 9});
  const SharedRun r = run_wrr_known_weight(inst, 3.0);
  EXPECT_EQ(r.completions.size(), inst.size());
  for (const Job& j : inst.jobs()) {
    EXPECT_GE(r.completions.at(j.id), j.release);
  }
}

TEST(NaiveNC, MatchesNCOnlyForSingleJob) {
  // With exactly one job the naive rule coincides with Algorithm NC.
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const RunResult naive = run_naive_nc(inst, 2.0);
  EXPECT_NEAR(naive.metrics.energy, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(naive.metrics.fractional_flow, 4.0 / 3.0, 1e-12);
}

TEST(NaiveNC, OverspendsOnSparseInstances) {
  // Sparse arrivals: the naive offset keeps growing, so later jobs burn far
  // more energy than Algorithm C would.
  const Instance inst = workload::generate({.n_jobs = 12, .arrival_rate = 0.2, .seed = 14});
  const double alpha = 2.0;
  const RunResult naive = run_naive_nc(inst, alpha);
  const RunResult c = run_c(inst, alpha);
  EXPECT_GT(naive.metrics.energy, c.metrics.energy * 1.05);
}

TEST(Baselines, SchedulesValidate) {
  const Instance inst = workload::generate({.n_jobs = 10, .seed = 20});
  run_fixed_speed(inst, 2.0, 1.5).schedule.validate(inst);
  run_naive_nc(inst, 2.0).schedule.validate(inst);
}

}  // namespace
}  // namespace speedscale
