// Tests for the related-work modules: YDS/AVR deadline scheduling ([3]) and
// flow-under-energy-budget ([4]).
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "src/algo/yds.h"
#include "src/opt/budgeted.h"
#include "src/opt/convex_opt.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

DeadlineInstance random_deadline_instance(int n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<DeadlineJob> jobs;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += u(rng);
    DeadlineJob j;
    j.release = t;
    j.deadline = t + 0.5 + 3.0 * u(rng);
    j.volume = 0.2 + 2.0 * u(rng);
    jobs.push_back(j);
  }
  return DeadlineInstance(std::move(jobs));
}

TEST(Yds, SingleJobRunsAtAverageRate) {
  const DeadlineInstance inst({DeadlineJob{kNoJob, 1.0, 3.0, 4.0}});
  const DeadlineRun run = run_yds(inst, 2.0);
  validate_deadline_run(inst, run);
  // Optimal: constant speed V / (d - r) = 2 over the whole window.
  EXPECT_NEAR(run.energy, 4.0 * 2.0, 1e-9);  // s^2 * duration = 4 * 2
  ASSERT_EQ(run.schedule.segments().size(), 1u);
  EXPECT_NEAR(run.schedule.segments()[0].param, 2.0, 1e-12);
}

TEST(Yds, NestedJobCreatesTwoSpeedLevels) {
  // Outer job [0, 4] volume 2 (avg rate 0.5); inner job [1, 2] volume 2
  // (avg rate 2): the critical interval is [1, 2] at speed... intensity of
  // [1,2] counts only the inner job (outer not contained): g = 2.  Then the
  // outer job runs in the remaining 3 time units at speed 2/3.
  const DeadlineInstance inst({DeadlineJob{kNoJob, 0.0, 4.0, 2.0},
                               DeadlineJob{kNoJob, 1.0, 2.0, 2.0}});
  const DeadlineRun run = run_yds(inst, 2.0);
  validate_deadline_run(inst, run);
  const double expect = 2.0 * 2.0 * 1.0 + (2.0 / 3.0) * (2.0 / 3.0) * 3.0;
  EXPECT_NEAR(run.energy, expect, 1e-9);
}

TEST(Yds, ProfileIsFeasibleOnRandomInstances) {
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const DeadlineInstance inst = random_deadline_instance(10, seed);
    const DeadlineRun run = run_yds(inst, 3.0);
    validate_deadline_run(inst, run);
  }
}

TEST(Yds, BeatsAvrAndConstantSpeedEverywhere) {
  for (std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
    const DeadlineInstance inst = random_deadline_instance(8, seed);
    for (const double alpha : {2.0, 3.0}) {
      const DeadlineRun yds = run_yds(inst, alpha);
      const DeadlineRun avr = run_avr(inst, alpha);
      validate_deadline_run(inst, avr);
      EXPECT_LE(yds.energy, avr.energy * (1.0 + 1e-9)) << "seed " << seed;
      // Constant-speed-EDF baseline: the minimal feasible constant speed is
      // the max interval intensity; busy time = total volume / s.
      double s_star = 0.0;
      for (const DeadlineJob& a : inst.jobs()) {
        for (const DeadlineJob& b : inst.jobs()) {
          if (b.deadline <= a.release) continue;
          double vol = 0.0;
          for (const DeadlineJob& j : inst.jobs()) {
            if (j.release >= a.release && j.deadline <= b.deadline) vol += j.volume;
          }
          s_star = std::max(s_star, vol / (b.deadline - a.release));
        }
      }
      double total_volume = 0.0;
      for (const DeadlineJob& j : inst.jobs()) total_volume += j.volume;
      const double const_energy = std::pow(s_star, alpha) * (total_volume / s_star);
      EXPECT_LE(yds.energy, const_energy * (1.0 + 1e-9)) << "seed " << seed;
    }
  }
}

TEST(Yds, RejectsBadInstances) {
  EXPECT_THROW(DeadlineInstance({DeadlineJob{kNoJob, 1.0, 1.0, 1.0}}), ModelError);
  EXPECT_THROW(DeadlineInstance({DeadlineJob{kNoJob, 0.0, 1.0, 0.0}}), ModelError);
}

TEST(Oa, FeasibleAndBetweenYdsAndWorstCase) {
  for (std::uint64_t seed : {2ULL, 5ULL, 13ULL}) {
    const DeadlineInstance inst = random_deadline_instance(9, seed);
    const double alpha = 2.0;
    const DeadlineRun yds = run_yds(inst, alpha);
    const DeadlineRun oa = run_oa(inst, alpha);
    validate_deadline_run(inst, oa);
    // OA can never beat the offline optimum...
    EXPECT_GE(oa.energy, yds.energy * (1.0 - 1e-9)) << "seed " << seed;
    // ...and is alpha^alpha-competitive (generous check).
    EXPECT_LE(oa.energy, std::pow(alpha, alpha) * yds.energy * (1.0 + 1e-9))
        << "seed " << seed;
  }
}

TEST(Oa, SingleJobMatchesYds) {
  // With one job OA's first (only) plan IS the offline optimum.
  const DeadlineInstance inst({DeadlineJob{kNoJob, 0.5, 2.5, 3.0}});
  const DeadlineRun yds = run_yds(inst, 3.0);
  const DeadlineRun oa = run_oa(inst, 3.0);
  EXPECT_NEAR(oa.energy, yds.energy, 1e-9 * yds.energy);
}

TEST(Avr, CompletesBeforeDeadlines) {
  const DeadlineInstance inst = random_deadline_instance(12, 11);
  const DeadlineRun run = run_avr(inst, 2.0);
  validate_deadline_run(inst, run);
  for (const DeadlineJob& j : inst.jobs()) {
    EXPECT_LE(run.schedule.completion(j.id), j.deadline + 1e-9);
  }
}

TEST(Budgeted, RelaxingTheBudgetNeverHurtsFlow) {
  const Instance inst = workload::generate({.n_jobs = 6, .arrival_rate = 1.0, .seed = 5});
  const double alpha = 2.0;
  const ConvexOptResult unconstrained = solve_fractional_opt(inst, alpha, {.slots = 300});
  double prev_flow = kInf;
  for (double budget : {0.5 * unconstrained.energy, 1.0 * unconstrained.energy,
                        2.0 * unconstrained.energy}) {
    const BudgetedResult r =
        solve_flow_under_energy_budget(inst, alpha, budget, {.slots = 300, .max_iters = 2000});
    EXPECT_LE(r.energy, budget * 1.03);
    EXPECT_LE(r.flow, prev_flow * (1.0 + 1e-6));
    prev_flow = r.flow;
  }
}

TEST(Budgeted, SlackBudgetRecoversUnconstrainedFlow) {
  const Instance inst = workload::generate({.n_jobs = 5, .seed = 9});
  const double alpha = 2.0;
  const ConvexOptResult unconstrained = solve_fractional_opt(inst, alpha, {.slots = 300});
  const BudgetedResult r = solve_flow_under_energy_budget(
      inst, alpha, 50.0 * unconstrained.energy, {.slots = 300, .max_iters = 2000});
  // With an enormous budget the flow approaches (and may slightly beat,
  // since the constrained solver can spend more energy) the flow of the
  // flow+energy optimum.
  EXPECT_LE(r.flow, unconstrained.fractional_flow * 1.05);
}

TEST(Budgeted, RejectsNonPositiveBudget) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  EXPECT_THROW((void)solve_flow_under_energy_budget(inst, 2.0, 0.0), ModelError);
}

}  // namespace
}  // namespace speedscale
