// Tests for identical parallel machines (paper Section 6: C-PAR, NC-PAR).
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/bounds.h"
#include "src/algo/parallel.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

Instance uniform_instance(int n, std::uint64_t seed, double rate = 2.0) {
  return workload::generate({.n_jobs = n, .arrival_rate = rate, .seed = seed});
}

TEST(CPar, SingleMachineReducesToAlgorithmC) {
  const Instance inst = uniform_instance(14, 3);
  const double alpha = 2.0;
  const ParallelRun par = run_c_par(inst, alpha, 1);
  const RunResult c = run_c(inst, alpha);
  EXPECT_NEAR(par.metrics.fractional_objective(), c.metrics.fractional_objective(), 1e-9);
  for (const Job& j : inst.jobs()) {
    EXPECT_EQ(par.assignment[static_cast<std::size_t>(j.id)], 0);
  }
}

TEST(NCPar, SingleMachineReducesToAlgorithmNC) {
  const Instance inst = uniform_instance(14, 3);
  const double alpha = 2.0;
  const ParallelRun par = run_nc_par(inst, alpha, 1);
  const RunResult nc = run_nc_uniform(inst, alpha);
  EXPECT_NEAR(par.metrics.energy, nc.metrics.energy, 1e-9);
  EXPECT_NEAR(par.metrics.fractional_flow, nc.metrics.fractional_flow, 1e-9);
}

TEST(CPar, GreedyPicksLeastLoadedMachine) {
  // Two heavy jobs then a light one: the light job must go to a fresh machine.
  const Instance inst({Job{kNoJob, 0.0, 10.0, 1.0}, Job{kNoJob, 0.01, 10.0, 1.0},
                       Job{kNoJob, 0.02, 0.1, 1.0}});
  const ParallelRun par = run_c_par(inst, 2.0, 3);
  EXPECT_NE(par.assignment[0], par.assignment[1]);
  EXPECT_NE(par.assignment[2], par.assignment[0]);
  EXPECT_NE(par.assignment[2], par.assignment[1]);
}

class ParallelSweep : public ::testing::TestWithParam<std::tuple<double, int, int>> {};

// Lemma 20: the NC-PAR assignment equals the C-PAR assignment.
TEST_P(ParallelSweep, Lemma20AssignmentsCoincide) {
  const auto [alpha, k, seed] = GetParam();
  const Instance inst = uniform_instance(26, static_cast<std::uint64_t>(seed));
  const ParallelRun c = run_c_par(inst, alpha, k);
  const ParallelRun nc = run_nc_par(inst, alpha, k);
  for (const Job& j : inst.jobs()) {
    EXPECT_EQ(c.assignment[static_cast<std::size_t>(j.id)],
              nc.assignment[static_cast<std::size_t>(j.id)])
        << "job " << j.id;
  }
}

// Lemma 21: equal energy.  Lemma 22: flow ratio exactly 1/(1 - 1/alpha).
TEST_P(ParallelSweep, Lemma21And22ExactIdentities) {
  const auto [alpha, k, seed] = GetParam();
  const Instance inst = uniform_instance(26, static_cast<std::uint64_t>(seed));
  const ParallelRun c = run_c_par(inst, alpha, k);
  const ParallelRun nc = run_nc_par(inst, alpha, k);
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
  const double expect = c.metrics.fractional_flow * bounds::nc_over_c_flow(alpha);
  EXPECT_NEAR(nc.metrics.fractional_flow, expect, 1e-9 * std::max(1.0, expect));
}

INSTANTIATE_TEST_SUITE_P(Grid, ParallelSweep,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(2, 3, 5),
                                            ::testing::Values(1, 2, 3)));

TEST(Parallel, MoreMachinesNeverHurt) {
  const Instance inst = uniform_instance(20, 9, 4.0);
  const double alpha = 2.0;
  double prev = kInf;
  for (int k : {1, 2, 4, 8}) {
    const double cost = run_nc_par(inst, alpha, k).metrics.fractional_objective();
    EXPECT_LE(cost, prev * (1.0 + 1e-9)) << "k=" << k;
    prev = cost;
  }
}

TEST(Parallel, SchedulesAreDisjointPerJob) {
  const Instance inst = uniform_instance(18, 21);
  const ParallelRun par = run_nc_par(inst, 2.0, 3);
  // No migration: each job appears on exactly its assigned machine.
  for (std::size_t mi = 0; mi < par.schedules.size(); ++mi) {
    for (const Segment& seg : par.schedules[mi].segments()) {
      ASSERT_NE(seg.job, kNoJob);
      EXPECT_EQ(par.assignment[static_cast<std::size_t>(seg.job)],
                static_cast<MachineId>(mi));
    }
  }
  // Every job completes exactly once across machines.
  std::size_t completed = 0;
  for (const Schedule& s : par.schedules) completed += s.completions().size();
  EXPECT_EQ(completed, inst.size());
}

TEST(Parallel, StartTimesRespectReleaseAndQueue) {
  const Instance inst = uniform_instance(18, 33, 6.0);  // bursty
  const ParallelRun par = run_nc_par(inst, 2.0, 2);
  for (const Job& j : inst.jobs()) {
    EXPECT_GE(par.start_times[static_cast<std::size_t>(j.id)], j.release - 1e-12);
  }
}

TEST(Parallel, TiedReleasesKeepLemma20AndIdentities) {
  // Several jobs released at identical instants: the tie conventions of
  // C-PAR (index order) and NC-PAR (cohort offsets) must stay aligned.
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 2.0, 1.0},
                       Job{kNoJob, 0.0, 0.5, 1.0}, Job{kNoJob, 1.0, 1.0, 1.0},
                       Job{kNoJob, 1.0, 0.7, 1.0}, Job{kNoJob, 2.5, 0.4, 1.0}});
  const double alpha = 2.0;
  const ParallelRun c = run_c_par(inst, alpha, 2);
  const ParallelRun nc = run_nc_par(inst, alpha, 2);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(c.assignment[i], nc.assignment[i]) << "job " << i;
  }
  EXPECT_NEAR(nc.metrics.energy, c.metrics.energy, 1e-9 * std::max(1.0, c.metrics.energy));
  EXPECT_NEAR(nc.metrics.fractional_flow, 2.0 * c.metrics.fractional_flow,
              1e-9 * std::max(1.0, nc.metrics.fractional_flow));
}

TEST(Parallel, MoreMachinesThanJobs) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.2, 1.0, 1.0}});
  const ParallelRun nc = run_nc_par(inst, 2.0, 5);
  // Each job gets its own machine; no queueing.
  EXPECT_NE(nc.assignment[0], nc.assignment[1]);
  EXPECT_NEAR(nc.start_times[0], 0.0, 1e-12);
  EXPECT_NEAR(nc.start_times[1], 0.2, 1e-12);
}

TEST(Parallel, RejectsBadInputs) {
  const Instance uni = uniform_instance(4, 1);
  EXPECT_THROW(run_c_par(uni, 2.0, 0), ModelError);
  EXPECT_THROW(run_nc_par(uni, 2.0, 0), ModelError);
  const Instance mixed({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 1.0, 3.0}});
  EXPECT_THROW(run_nc_par(mixed, 2.0, 2), ModelError);
}

TEST(Parallel, CParHandlesNonUniformDensities) {
  // C-PAR is clairvoyant and supports arbitrary densities.
  const Instance mixed = workload::generate(
      {.n_jobs = 16, .density_mode = workload::DensityMode::kClasses, .seed = 6});
  const ParallelRun par = run_c_par(mixed, 2.5, 3);
  EXPECT_GT(par.metrics.fractional_objective(), 0.0);
  std::size_t completed = 0;
  for (const Schedule& s : par.schedules) completed += s.completions().size();
  EXPECT_EQ(completed, mixed.size());
}

}  // namespace
}  // namespace speedscale
