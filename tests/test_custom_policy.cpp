// Tests for the custom-policy engine (sim/custom_policy.h): user-defined
// non-clairvoyant speed rules cross-validated against the exact simulators.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/sim/c_machine.h"
#include "src/sim/custom_policy.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

// FIFO job picker over observable state.
JobId fifo_pick(const ObservableState& st) {
  for (const auto& j : st.jobs) {
    if (!j.completed) return j.id;
  }
  return kNoJob;
}

TEST(CustomPolicy, FixedSpeedFifoMatchesBuiltin) {
  const Instance inst = workload::generate({.n_jobs = 10, .arrival_rate = 1.0, .seed = 2});
  const double alpha = 2.0, speed = 1.3;
  const RunResult builtin = run_fixed_speed(inst, alpha, speed);
  const RunResult custom = run_custom_policy(inst, alpha, [&](const ObservableState& st) {
    return PolicyDecision{fifo_pick(st), speed};
  });
  EXPECT_NEAR(custom.metrics.fractional_objective(), builtin.metrics.fractional_objective(),
              1e-6 * builtin.metrics.fractional_objective());
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(custom.schedule.completion(j.id), builtin.schedule.completion(j.id), 1e-6);
  }
}

TEST(CustomPolicy, AlgorithmNCExpressedOverObservables) {
  // Algorithm NC's speed rule uses only observable data: the clairvoyant
  // prefix run needs the volumes of jobs released before r_j, all of which
  // FIFO has completed (and thereby revealed) by the time j runs.
  const Instance inst = workload::generate({.n_jobs = 10, .arrival_rate = 1.2, .seed = 7});
  const double alpha = 2.0;
  const PowerLawKinematics kin(alpha);

  const SpeedPolicy nc_policy = [&](const ObservableState& st) -> PolicyDecision {
    const JobId cur = fifo_pick(st);
    if (cur == kNoJob) return {};
    // Rebuild the revealed prefix: completed jobs' volumes are known.
    double cur_release = 0.0, cur_density = 1.0, cur_processed = 0.0;
    for (const auto& j : st.jobs) {
      if (j.id == cur) {
        cur_release = j.release;
        cur_density = j.density;
        cur_processed = j.processed;
      }
    }
    std::vector<Job> prefix;
    for (const auto& j : st.jobs) {
      if (j.id != cur && j.completed && j.release < cur_release + 1e-15) {
        prefix.push_back(Job{kNoJob, j.release, j.processed, j.density});
      }
    }
    double offset = 0.0;
    if (!prefix.empty()) {
      const Schedule c = run_algorithm_c(Instance(std::move(prefix)), alpha);
      offset = c_remaining_weight_left(c, cur_release);
    }
    const double u = offset + cur_density * cur_processed;
    // Bootstrap the growing branch when u is exactly 0 (cf. kinematics.h).
    return {cur, std::max(kin.speed_at_weight(u), 1e-4)};
  };

  CustomPolicyParams params;
  params.step_growth = 0.01;
  params.min_step = 1e-7;
  const RunResult custom = run_custom_policy(inst, alpha, nc_policy, params);
  const RunResult exact = run_nc_uniform(inst, alpha);
  EXPECT_NEAR(custom.metrics.fractional_objective(), exact.metrics.fractional_objective(),
              2e-2 * exact.metrics.fractional_objective());
  EXPECT_NEAR(custom.metrics.energy, exact.metrics.energy, 2e-2 * exact.metrics.energy);
}

TEST(CustomPolicy, ObservableStateHidesVolumes) {
  // Structural check: the observable state simply has no volume field; the
  // policy only learns a volume when processed == volume at completion.
  const Instance inst({Job{kNoJob, 0.0, 2.5, 1.0}});
  double revealed_at_completion = 0.0;
  (void)run_custom_policy(inst, 2.0, [&](const ObservableState& st) -> PolicyDecision {
    const auto& j = st.jobs.at(0);
    if (j.completed) revealed_at_completion = j.processed;
    return {j.completed ? kNoJob : j.id, 1.0};
  });
  EXPECT_DOUBLE_EQ(revealed_at_completion, 0.0);  // engine stops at completion
  // Run again, observing after completion via a second job.
  const Instance two({Job{kNoJob, 0.0, 2.5, 1.0}, Job{kNoJob, 10.0, 1.0, 1.0}});
  (void)run_custom_policy(two, 2.0, [&](const ObservableState& st) -> PolicyDecision {
    if (st.jobs.at(0).completed) revealed_at_completion = st.jobs.at(0).processed;
    return {fifo_pick(st), 1.0};
  });
  EXPECT_DOUBLE_EQ(revealed_at_completion, 2.5);
}

TEST(CustomPolicy, RejectsIllegalDecisions) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 5.0, 1.0, 1.0}});
  // Picking a job before its release.
  EXPECT_THROW(
      (void)run_custom_policy(inst, 2.0,
                              [](const ObservableState&) {
                                return PolicyDecision{1, 1.0};
                              }),
      ModelError);
  // Idling forever with work remaining.
  const Instance one({Job{kNoJob, 0.0, 1.0, 1.0}});
  EXPECT_THROW((void)run_custom_policy(one, 2.0,
                                       [](const ObservableState&) {
                                         return PolicyDecision{};
                                       }),
               ModelError);
}

TEST(CustomPolicy, ActiveCountHelper) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 2.0, 1.0}});
  std::size_t seen = 0;
  (void)run_custom_policy(inst, 2.0, [&](const ObservableState& st) {
    seen = std::max(seen, st.active_count());
    return PolicyDecision{fifo_pick(st), 2.0};
  });
  EXPECT_EQ(seen, 2u);
}

}  // namespace
}  // namespace speedscale
