// Tests for the Section 7 open-problem exploration (algo/open_problem.h)
// and the doubling baseline.
#include <gtest/gtest.h>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/open_problem.h"
#include "src/algo/parallel.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

Instance mixed_instance(int n, std::uint64_t seed) {
  return workload::generate({.n_jobs = n,
                             .arrival_rate = 1.5,
                             .density_mode = workload::DensityMode::kClasses,
                             .density_classes = 3,
                             .density_spread = 30.0,
                             .seed = seed});
}

TEST(OpenProblem, BothCandidatesCompleteAllJobs) {
  const Instance inst = mixed_instance(14, 4);
  const OpenProblemRun a = run_cpar_density_restricted(inst, 2.0, 3);
  const OpenProblemRun b = run_ncpar_hdf_queue(inst, 2.0, 3);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_NE(a.assignment[i], kNoMachine);
    EXPECT_NE(b.assignment[i], kNoMachine);
  }
  EXPECT_GT(a.metrics.fractional_objective(), 0.0);
  EXPECT_GT(b.metrics.fractional_objective(), 0.0);
}

TEST(OpenProblem, UniformDensityRestrictedGreedyEqualsCPar) {
  // With one density class the restriction is vacuous: the candidate
  // comparator degenerates to C-PAR's least-remaining-weight rule.
  const Instance inst = workload::generate({.n_jobs = 18, .arrival_rate = 2.0, .seed = 8});
  const OpenProblemRun a = run_cpar_density_restricted(inst, 2.0, 3, /*beta=*/0.0);
  const ParallelRun c = run_c_par(inst, 2.0, 3);
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(a.assignment[i], c.assignment[i]) << "job " << i;
  }
  EXPECT_NEAR(a.metrics.fractional_objective(), c.metrics.fractional_objective(), 1e-9);
}

TEST(OpenProblem, DivergenceExists) {
  // The paper's conjecture: the two candidates CAN assign differently.
  const DivergenceReport rep = search_divergence(2.0, 2, 16, 40);
  EXPECT_EQ(rep.instances_tried, 40);
  EXPECT_GT(rep.diverged, 0);
  EXPECT_NE(rep.first_divergent_seed, 0u);
}

TEST(OpenProblem, DivergenceCostIsConstantFactor) {
  // ... but on these workloads the cost of the divergence stays a small
  // constant (the Section 7 intuition about density imbalance).
  const DivergenceReport rep = search_divergence(2.0, 2, 16, 40);
  EXPECT_LT(rep.worst_cost_ratio, 25.0);
  EXPECT_GE(rep.worst_cost_ratio, 1.0);
}

TEST(OpenProblem, RejectsBadMachineCounts) {
  const Instance inst = mixed_instance(4, 1);
  EXPECT_THROW(run_cpar_density_restricted(inst, 2.0, 0), ModelError);
  EXPECT_THROW(run_ncpar_hdf_queue(inst, 2.0, 0), ModelError);
}

TEST(DoublingBaseline, CompletesAndValidates) {
  const Instance inst = workload::generate({.n_jobs = 12, .seed = 6});
  const RunResult r = run_doubling_nc(inst, 2.0);
  r.schedule.validate(inst);
  for (const Job& j : inst.jobs()) EXPECT_TRUE(r.schedule.completed(j.id));
}

TEST(DoublingBaseline, WorseThanAlgorithmNC) {
  // Guess-and-double pays for its guesses; Algorithm NC does not guess.
  const Instance inst = workload::generate({.n_jobs = 16, .arrival_rate = 1.0, .seed = 2});
  const RunResult d = run_doubling_nc(inst, 2.0);
  const RunResult nc = run_nc_uniform(inst, 2.0);
  EXPECT_GT(d.metrics.fractional_objective(), nc.metrics.fractional_objective());
}

TEST(DoublingBaseline, GuessGranularityMatters) {
  const Instance inst = workload::generate({.n_jobs = 10, .seed = 3});
  const RunResult tiny = run_doubling_nc(inst, 2.0, 1e-4);
  const RunResult matched = run_doubling_nc(inst, 2.0, 1.0);
  // A wildly small initial guess wastes phases (and flow-time).
  EXPECT_GT(tiny.metrics.fractional_objective(),
            0.9 * matched.metrics.fractional_objective());
  EXPECT_THROW(run_doubling_nc(inst, 2.0, 0.0), ModelError);
}

}  // namespace
}  // namespace speedscale
