// Tests for the adversarial worst-case search (analysis/worst_case.h).
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/bounds.h"
#include "src/analysis/worst_case.h"
#include "src/opt/convex_opt.h"
#include "src/opt/single_job_opt.h"

namespace speedscale {
namespace {

TEST(SingleJobGame, NcRatioIsScaleInvariant) {
  // NC's single-job ratio must be flat in the stopping volume.
  const double alpha = 2.0;
  const auto nc_cost = [&](double v) {
    const Instance one({Job{kNoJob, 0.0, v, 1.0}});
    return run_nc_uniform(one, alpha).metrics.fractional_objective();
  };
  double lo = kInf, hi = 0.0;
  for (double v : {0.01, 0.3, 1.0, 7.0, 300.0}) {
    const double r = nc_cost(v) / single_job_frac_opt(v, 1.0, alpha).objective;
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  EXPECT_NEAR(lo, hi, 1e-9);
  // At alpha = 2 the flat value is exactly 1.5 (computed in test_nc_uniform).
  EXPECT_NEAR(hi, 1.5, 1e-9);
}

TEST(SingleJobGame, FindsWorstOnGrid) {
  const double alpha = 2.0;
  const auto dbl_cost = [&](double v) {
    const Instance one({Job{kNoJob, 0.0, v, 1.0}});
    return run_doubling_nc(one, alpha).metrics.fractional_objective();
  };
  const analysis::SingleJobGameResult r = analysis::single_job_game(dbl_cost, alpha);
  EXPECT_GT(r.worst_ratio, 1.0);
  EXPECT_GE(r.worst_volume, 1e-3);
  EXPECT_LE(r.worst_volume, 1e3);
  // The doubling policy's worst ratio exceeds NC's flat 1.5.
  EXPECT_GT(r.worst_ratio, 1.5);
}

TEST(WorstCase, SearchImprovesAndStaysUnderTheoremBound) {
  const double alpha = 2.0;
  analysis::WorstCaseOptions opts;
  opts.n_jobs = 2;
  opts.rounds = 6;
  opts.opt_slots = 250;
  const analysis::WorstCaseResult w = analysis::find_worst_nc_instance(alpha, opts);
  EXPECT_GT(w.evaluations, 10);
  // The found ratio is a genuine lower bound estimate: above the single-job
  // ratio (waiting helps the adversary) and below Theorem 5's upper bound
  // (with a little numerical-OPT slack).
  EXPECT_GT(w.ratio, 1.5);
  EXPECT_LT(w.ratio, bounds::nc_uniform_fractional(alpha) * 1.05);
  // The reported instance really achieves the reported ratio.
  const double nc = run_nc_uniform(w.instance, alpha).metrics.fractional_objective();
  const double opt = solve_fractional_opt(w.instance, alpha, {.slots = 250}).objective;
  EXPECT_NEAR(nc / opt, w.ratio, 0.02 * w.ratio);
}

}  // namespace
}  // namespace speedscale
