// Model-level property tests: the scaling symmetries of the P = s^alpha
// model, shift invariance, and monotonicity.  These pin down the simulator's
// physics independently of the paper's lemmas.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/parallel.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

Instance base_instance(int n, std::uint64_t seed) {
  return workload::generate({.n_jobs = n, .arrival_rate = 1.5, .seed = seed});
}

/// Volumes x lambda, releases x lambda^b (b = 1 - 1/alpha) maps trajectories
/// onto themselves: W'(t) = lambda * W(t / lambda^b).  All objective
/// components then scale by lambda^{1+b} = lambda^{2 - 1/alpha}.
class ScaleInvariance : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(ScaleInvariance, AlgorithmC) {
  const auto [alpha, lambda] = GetParam();
  const double b = 1.0 - 1.0 / alpha;
  const Instance inst = base_instance(14, 7);
  std::vector<Job> scaled = inst.jobs();
  for (Job& j : scaled) {
    j.volume *= lambda;
    j.release *= std::pow(lambda, b);
  }
  const Instance inst2{std::move(scaled)};
  const RunResult a = run_c(inst, alpha);
  const RunResult s = run_c(inst2, alpha);
  const double f = std::pow(lambda, 1.0 + b);
  EXPECT_NEAR(s.metrics.energy, f * a.metrics.energy, 1e-9 * f * a.metrics.energy);
  EXPECT_NEAR(s.metrics.fractional_flow, f * a.metrics.fractional_flow,
              1e-9 * f * a.metrics.fractional_flow);
  // Completion times pass through W^{1/b} chains (1/b = 3 at alpha = 1.5),
  // which amplify rounding; allow 1e-5 relative for the time-like outputs.
  EXPECT_NEAR(s.metrics.integral_flow, f * a.metrics.integral_flow,
              1e-5 * f * a.metrics.integral_flow);
  const double tb = std::pow(lambda, b);
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(s.schedule.completion(j.id), tb * a.schedule.completion(j.id),
                1e-5 * tb * std::max(1.0, a.schedule.completion(j.id)));
  }
}

TEST_P(ScaleInvariance, AlgorithmNC) {
  const auto [alpha, lambda] = GetParam();
  const double b = 1.0 - 1.0 / alpha;
  const Instance inst = base_instance(14, 9);
  std::vector<Job> scaled = inst.jobs();
  for (Job& j : scaled) {
    j.volume *= lambda;
    j.release *= std::pow(lambda, b);
  }
  const Instance inst2{std::move(scaled)};
  const RunResult a = run_nc_uniform(inst, alpha);
  const RunResult s = run_nc_uniform(inst2, alpha);
  const double f = std::pow(lambda, 1.0 + b);
  EXPECT_NEAR(s.metrics.fractional_objective(), f * a.metrics.fractional_objective(),
              1e-9 * f * a.metrics.fractional_objective());
}

INSTANTIATE_TEST_SUITE_P(Grid, ScaleInvariance,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(0.25, 4.0, 64.0)));

/// Densities x mu with volumes x 1/mu keeps every weight; time then runs mu
/// times faster (dW/dt = -mu rho W^{1/a} after the release rescale), so all
/// objectives scale by 1/mu.
TEST(DensityScaling, CostsScaleInversely) {
  const double alpha = 2.0, mu = 3.0;
  std::vector<Job> jobs = base_instance(12, 11).jobs();
  std::vector<Job> scaled = jobs;
  for (Job& j : scaled) {
    j.density *= mu;
    j.volume /= mu;
    j.release /= mu;
  }
  const Instance a_inst{std::move(jobs)};
  const Instance s_inst{std::move(scaled)};
  const RunResult a = run_c(a_inst, alpha);
  const RunResult s = run_c(s_inst, alpha);
  EXPECT_NEAR(s.metrics.fractional_objective(), a.metrics.fractional_objective() / mu,
              1e-9 * a.metrics.fractional_objective());
  const RunResult an = run_nc_uniform(a_inst, alpha);
  const RunResult sn = run_nc_uniform(s_inst, alpha);
  EXPECT_NEAR(sn.metrics.fractional_objective(), an.metrics.fractional_objective() / mu,
              1e-9 * an.metrics.fractional_objective());
}

/// Shifting every release by Delta shifts the whole run and leaves costs
/// unchanged (the model is time-translation invariant).
TEST(ShiftInvariance, CostsUnchangedCompletionsShift) {
  const double alpha = 2.5, delta = 17.25;
  const Instance inst = base_instance(10, 13);
  std::vector<Job> shifted = inst.jobs();
  for (Job& j : shifted) j.release += delta;
  const Instance inst2{std::move(shifted)};
  for (const bool clairvoyant : {true, false}) {
    const RunResult a = clairvoyant ? run_c(inst, alpha) : run_nc_uniform(inst, alpha);
    const RunResult s = clairvoyant ? run_c(inst2, alpha) : run_nc_uniform(inst2, alpha);
    EXPECT_NEAR(s.metrics.fractional_objective(), a.metrics.fractional_objective(),
                1e-9 * a.metrics.fractional_objective());
    for (const Job& j : inst.jobs()) {
      EXPECT_NEAR(s.schedule.completion(j.id), a.schedule.completion(j.id) + delta, 1e-8);
    }
  }
}

TEST(Monotonicity, CompletionGrowsWithVolume) {
  const double alpha = 2.0;
  double prev_c = 0.0, prev_nc = 0.0;
  for (double v : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    const Instance one({Job{kNoJob, 0.0, v, 1.0}});
    const double c = run_c(one, alpha).schedule.completion(0);
    const double nc = run_nc_uniform(one, alpha).schedule.completion(0);
    EXPECT_GT(c, prev_c);
    EXPECT_GT(nc, prev_nc);
    // Single job: NC and C have identical completion times (same curve,
    // reversed) — Figure 1.
    EXPECT_NEAR(c, nc, 1e-9 * c);
    prev_c = c;
    prev_nc = nc;
  }
}

TEST(Monotonicity, AddingAJobNeverHelps) {
  const double alpha = 2.0;
  const Instance small = base_instance(8, 17);
  std::vector<Job> more = small.jobs();
  more.push_back(Job{kNoJob, 0.7, 1.3, 1.0});
  const Instance big{std::move(more)};
  EXPECT_GT(run_c(big, alpha).metrics.fractional_objective(),
            run_c(small, alpha).metrics.fractional_objective());
  EXPECT_GT(run_nc_uniform(big, alpha).metrics.fractional_objective(),
            run_nc_uniform(small, alpha).metrics.fractional_objective());
}

TEST(ParallelScaling, ScaleInvarianceExtendsToMachines) {
  const double alpha = 2.0, lambda = 9.0;
  const double b = 1.0 - 1.0 / alpha;
  const Instance inst = base_instance(20, 19);
  std::vector<Job> scaled = inst.jobs();
  for (Job& j : scaled) {
    j.volume *= lambda;
    j.release *= std::pow(lambda, b);
  }
  const Instance inst2{std::move(scaled)};
  const ParallelRun a = run_nc_par(inst, alpha, 3);
  const ParallelRun s = run_nc_par(inst2, alpha, 3);
  const double f = std::pow(lambda, 1.0 + b);
  EXPECT_NEAR(s.metrics.fractional_objective(), f * a.metrics.fractional_objective(),
              1e-9 * f * a.metrics.fractional_objective());
  for (std::size_t i = 0; i < inst.size(); ++i) {
    EXPECT_EQ(a.assignment[i], s.assignment[i]);
  }
}

}  // namespace
}  // namespace speedscale
