// Tests for speed-profile level-set machinery (sim/speed_profile.h).
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/core/power.h"
#include "src/sim/speed_profile.h"

namespace speedscale {
namespace {

TEST(SpeedProfile, ConstantSegmentLevelSets) {
  Schedule s(2.0);
  s.append({0.0, 2.0, 0, SpeedLaw::kConstant, 3.0, 1.0});
  EXPECT_DOUBLE_EQ(time_at_or_above(s, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(time_at_or_above(s, 3.0), 2.0);
  EXPECT_DOUBLE_EQ(time_at_or_above(s, 3.0001), 0.0);
  EXPECT_THROW((void)time_at_or_above(s, 0.0), ModelError);
}

TEST(SpeedProfile, DecaySegmentLevelSetMatchesSampling) {
  const double alpha = 2.0;
  Schedule s(alpha);
  const PowerLawKinematics kin(alpha);
  const double t_end = kin.decay_time_to_zero(4.0, 1.0);
  s.append({0.0, t_end, 0, SpeedLaw::kPowerDecay, 4.0, 1.0});
  for (double x : {0.5, 1.0, 1.5, 1.9}) {
    // Sample-based measure.
    const int n = 400000;
    double meas = 0.0;
    for (int i = 0; i < n; ++i) {
      const double t = t_end * (i + 0.5) / n;
      if (s.speed_at(t) >= x) meas += t_end / n;
    }
    EXPECT_NEAR(time_at_or_above(s, x), meas, 1e-3 * t_end) << "x=" << x;
  }
}

TEST(SpeedProfile, GrowSegmentLevelSetMatchesSampling) {
  const double alpha = 3.0;
  Schedule s(alpha);
  const PowerLawKinematics kin(alpha);
  const double t_end = kin.grow_time_to_weight(0.0, 4.0, 1.0);
  s.append({0.0, t_end, 0, SpeedLaw::kPowerGrow, 0.0, 1.0});
  for (double x : {0.3, 0.8, 1.2}) {
    const int n = 400000;
    double meas = 0.0;
    for (int i = 0; i < n; ++i) {
      const double t = t_end * (i + 0.5) / n;
      if (s.speed_at(t) >= x) meas += t_end / n;
    }
    EXPECT_NEAR(time_at_or_above(s, x), meas, 1e-3 * t_end) << "x=" << x;
  }
}

TEST(SpeedProfile, ThresholdGridSpansSpeeds) {
  Schedule s(2.0);
  s.append({0.0, 1.0, 0, SpeedLaw::kConstant, 2.0, 1.0});
  const auto grid = speed_threshold_grid(s, 33);
  ASSERT_EQ(grid.size(), 33u);
  EXPECT_LE(grid.front(), 2.0e-5);
  EXPECT_NEAR(grid.back(), 2.0, 1e-9);
  for (std::size_t i = 1; i < grid.size(); ++i) EXPECT_GT(grid[i], grid[i - 1]);
}

TEST(SpeedProfile, EmptyScheduleGrid) {
  Schedule s(2.0);
  EXPECT_TRUE(speed_threshold_grid(s, 10).empty());
}

TEST(SpeedProfile, RearrangementDistanceDetectsDifference) {
  Schedule a(2.0), b(2.0);
  a.append({0.0, 1.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
  b.append({0.0, 1.0, 0, SpeedLaw::kConstant, 2.0, 1.0});
  EXPECT_GT(rearrangement_distance(a, b), 0.5);
  // Same profile shifted in time: distance 0.
  Schedule c(2.0);
  c.append({5.0, 6.0, 0, SpeedLaw::kConstant, 1.0, 1.0});
  EXPECT_NEAR(rearrangement_distance(a, c), 0.0, 1e-12);
}

TEST(SpeedProfile, EnergyViaLevelSetsMatchesDirect) {
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.4, 1.0, 1.0}});
  const RunResult c = run_c(inst, alpha);
  const PowerLaw p(alpha);
  const double via_levels = energy_via_level_sets(c.schedule, p);
  EXPECT_NEAR(via_levels, c.metrics.energy, 1e-2 * c.metrics.energy);
}

}  // namespace
}  // namespace speedscale
