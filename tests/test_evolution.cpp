// Tests for the evolving-instance differential identities (Section 3 proof
// steps) via analysis/evolution.h.
#include <gtest/gtest.h>

#include "src/analysis/evolution.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

class EvolutionSweep : public ::testing::TestWithParam<std::tuple<double, int>> {};

TEST_P(EvolutionSweep, DifferentialIdentitiesHold) {
  const auto [alpha, seed] = GetParam();
  const Instance inst = workload::generate({.n_jobs = 10,
                                            .arrival_rate = 1.3,
                                            .seed = static_cast<std::uint64_t>(seed)});
  const analysis::EvolutionReport rep = analysis::analyze_evolution(inst, alpha, 16);
  ASSERT_FALSE(rep.probes.empty());
  // Eqn (4): the clairvoyant energy of I(T) grows at exactly NC's power.
  EXPECT_LT(rep.worst_eqn4_error, 1e-4);
  // Lemma 4 differential form: dE^C = (1 - 1/alpha) dF^NC.
  EXPECT_LT(rep.worst_lemma4_error, 1e-4);
  // Lemma 8 differential form: dFint <= (2 - 1/alpha) dF (allow fd noise).
  EXPECT_LT(rep.worst_lemma8_excess, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Grid, EvolutionSweep,
                         ::testing::Combine(::testing::Values(1.5, 2.0, 3.0),
                                            ::testing::Values(1, 2)));

TEST(Evolution, ProbesCarryConsistentMetadata) {
  const Instance inst = workload::generate({.n_jobs = 6, .seed = 3});
  const analysis::EvolutionReport rep = analysis::analyze_evolution(inst, 2.0, 8);
  double prev_t = -1.0;
  for (const auto& p : rep.probes) {
    EXPECT_GT(p.T, prev_t);
    prev_t = p.T;
    EXPECT_NE(p.job, kNoJob);
    EXPECT_GT(p.nc_power, 0.0);
    EXPECT_GT(p.dFnc_dT, 0.0);  // flow strictly accrues while processing
  }
}

TEST(Evolution, RejectsNonUniform) {
  const Instance mixed({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 1.0, 2.0}});
  EXPECT_THROW(analysis::analyze_evolution(mixed, 2.0), ModelError);
}

}  // namespace
}  // namespace speedscale
