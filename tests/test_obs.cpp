// Tests for the observability subsystem (src/obs/): event tracing sinks,
// the metrics registry, the profiler, and their thread-safety under the
// analysis thread pool (all three pillars are hammered from concurrent
// workers and must produce exact totals).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <clocale>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/thread_pool.h"
#include "src/obs/json_min.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"

namespace speedscale {
namespace {

using obs::EventKind;
using obs::TraceEvent;

/// The tracer and registry are process-wide: every test starts and ends with
/// both quiet so suites cannot leak state into each other.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { reset(); }
  void TearDown() override { reset(); }
  static void reset() {
    obs::Tracer::instance().set_enabled(false);
    obs::Tracer::instance().clear_sinks();
    obs::registry().reset_all();
    obs::profiler().reset();
    obs::set_metrics_enabled(false);
  }
};

TEST_F(ObsTest, EventKindNamesAreStable) {
  EXPECT_STREQ(obs::event_kind_name(EventKind::kJobRelease), "job_release");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kJobComplete), "job_complete");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kSpeedChange), "speed_change");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kPreemption), "preemption");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kDispatch), "dispatch");
  EXPECT_STREQ(obs::event_kind_name(EventKind::kPhaseBoundary), "phase_boundary");
}

TEST_F(ObsTest, RingBufferKeepsMostRecentAndCountsDrops) {
  obs::RingBufferSink ring(4);
  for (int i = 0; i < 10; ++i) {
    ring.on_event({.kind = EventKind::kSpeedChange, .t = static_cast<double>(i)});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 6u);
  const std::vector<TraceEvent> evs = ring.events();
  ASSERT_EQ(evs.size(), 4u);
  // Oldest-first snapshot of the last four events.
  for (int i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(evs[static_cast<std::size_t>(i)].t, 6.0 + i);
  ring.clear();
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST_F(ObsTest, JsonlSinkWritesOneValidObjectPerLine) {
  std::ostringstream os;
  obs::JsonlSink sink(os);
  sink.on_event({.kind = EventKind::kJobRelease, .t = 1.5, .job = 3, .value = 2.0, .aux = 1.0});
  sink.on_event({.kind = EventKind::kPhaseBoundary, .t = 0.0, .label = "suite \"x\""});
  sink.flush();
  EXPECT_EQ(sink.lines(), 2u);
  const std::string text = os.str();
  EXPECT_NE(text.find("\"kind\":\"job_release\""), std::string::npos);
  EXPECT_NE(text.find("\"job\":3"), std::string::npos);
  // kNoJob/kNoMachine fields are omitted, labels are escaped.
  EXPECT_EQ(text.find("\"machine\""), std::string::npos);
  EXPECT_NE(text.find("\\\"x\\\""), std::string::npos);
  // Exactly two newline-terminated lines.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 2);
}

TEST_F(ObsTest, SummarySinkCountsPerKind) {
  obs::SummarySink s;
  s.on_event({.kind = EventKind::kJobRelease, .t = 0.0});
  s.on_event({.kind = EventKind::kJobRelease, .t = 2.0});
  s.on_event({.kind = EventKind::kJobComplete, .t = 5.0});
  EXPECT_EQ(s.count(EventKind::kJobRelease), 2u);
  EXPECT_EQ(s.count(EventKind::kJobComplete), 1u);
  EXPECT_EQ(s.total(), 3u);
  const std::string text = s.summary();
  EXPECT_NE(text.find("3 events"), std::string::npos);
  EXPECT_NE(text.find("t=[0, 5]"), std::string::npos);
}

TEST_F(ObsTest, TraceEventMacroIsGatedOnEnableAndSuppress) {
  auto ring = std::make_shared<obs::RingBufferSink>();
  obs::Tracer::instance().add_sink(ring);

  // Disabled: nothing recorded.
  TRACE_EVENT(.kind = EventKind::kSpeedChange, .t = 1.0);
  EXPECT_EQ(ring->size(), 0u);

  obs::Tracer::instance().set_enabled(true);
  TRACE_EVENT(.kind = EventKind::kSpeedChange, .t = 2.0);
  EXPECT_EQ(ring->size(), 1u);

  {
    obs::TraceSuppressGuard guard;
    EXPECT_FALSE(obs::tracing_enabled());
    TRACE_EVENT(.kind = EventKind::kSpeedChange, .t = 3.0);
  }
  EXPECT_TRUE(obs::tracing_enabled());
  EXPECT_EQ(ring->size(), 1u);  // the suppressed event never arrived
}

TEST_F(ObsTest, ScopedTracingRestoresPriorState) {
  EXPECT_FALSE(obs::Tracer::instance().enabled());
  {
    obs::ScopedTracing scope(std::make_shared<obs::RingBufferSink>());
    EXPECT_TRUE(obs::Tracer::instance().enabled());
    EXPECT_EQ(obs::Tracer::instance().sink_count(), 1u);
  }
  EXPECT_FALSE(obs::Tracer::instance().enabled());
  EXPECT_EQ(obs::Tracer::instance().sink_count(), 0u);
}

TEST_F(ObsTest, CounterGaugeHistogramSemantics) {
  obs::Counter& c = obs::registry().counter("test.counter");
  c.add(3);
  c.add();
  EXPECT_EQ(c.value(), 4);
  // Same name -> same object.
  EXPECT_EQ(&c, &obs::registry().counter("test.counter"));

  obs::Gauge& g = obs::registry().gauge("test.gauge");
  g.set(2.5);
  g.add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);

  obs::Histogram& h = obs::registry().histogram("test.hist", {1.0, 10.0, 100.0});
  h.observe(0.5);    // bucket 0
  h.observe(5.0);    // bucket 1
  h.observe(5.5);    // bucket 1
  h.observe(1000.0); // overflow
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 1011.0);
  const std::vector<std::int64_t> buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 1);
  EXPECT_EQ(buckets[1], 2);
  EXPECT_EQ(buckets[2], 0);
  EXPECT_EQ(buckets[3], 1);
}

TEST_F(ObsTest, SnapshotJsonContainsEveryMetric) {
  obs::registry().counter("snap.counter").add(7);
  obs::registry().gauge("snap.gauge").set(0.25);
  obs::registry().histogram("snap.hist", {2.0}).observe(1.0);
  const std::string json = obs::registry().snapshot_json();
  EXPECT_NE(json.find("\"snap.counter\":7"), std::string::npos);
  EXPECT_NE(json.find("\"snap.gauge\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"snap.hist\""), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[2]"), std::string::npos);

  // The combined report embeds the same snapshot next to the profiler.
  { OBS_TIMED_SCOPE("snap.scope"); }
  const std::string report = obs::observability_report_json();
  EXPECT_NE(report.find("\"metrics\""), std::string::npos);
  EXPECT_NE(report.find("\"snap.counter\":7"), std::string::npos);
  EXPECT_NE(report.find("\"snap.scope\""), std::string::npos);
}

TEST_F(ObsTest, ObsCountIsGatedOnMetricsEnabled) {
  OBS_COUNT("test.gated", 5);
  EXPECT_EQ(obs::registry().counter("test.gated").value(), 0);
  obs::set_metrics_enabled(true);
  OBS_COUNT("test.gated", 5);
  OBS_COUNT("test.gated", 2);
  EXPECT_EQ(obs::registry().counter("test.gated").value(), 7);
}

TEST_F(ObsTest, ProfilerAggregatesPerLabel) {
  obs::profiler().record("p.a", 100);
  obs::profiler().record("p.a", 300);
  obs::profiler().record("p.b", 50);
  const std::vector<obs::ProfileEntry> snap = obs::profiler().snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // Sorted by total descending.
  EXPECT_EQ(snap[0].label, "p.a");
  EXPECT_EQ(snap[0].count, 2);
  EXPECT_EQ(snap[0].total_ns, 400);
  EXPECT_EQ(snap[0].min_ns, 100);
  EXPECT_EQ(snap[0].max_ns, 300);
  EXPECT_DOUBLE_EQ(snap[0].mean_ns(), 200.0);
  EXPECT_EQ(snap[1].label, "p.b");

  { OBS_TIMED_SCOPE("p.timed"); }
  EXPECT_EQ(obs::profiler().snapshot().size(), 3u);
  EXPECT_NE(obs::profiler().snapshot_json().find("\"p.timed\""), std::string::npos);
}

// --- Thread-safety: all three pillars hammered from pool workers ------------

TEST_F(ObsTest, MetricsAreExactUnderConcurrentWorkers) {
  constexpr int kTasks = 64;
  constexpr int kOpsPerTask = 2000;
  obs::set_metrics_enabled(true);
  obs::Counter& c = obs::registry().counter("hammer.counter");
  obs::Gauge& g = obs::registry().gauge("hammer.gauge");
  obs::Histogram& h = obs::registry().histogram("hammer.hist", {0.5, 1.5, 2.5});

  analysis::ThreadPool pool(4);
  analysis::parallel_for(pool, kTasks, [&](std::size_t i) {
    for (int k = 0; k < kOpsPerTask; ++k) {
      c.add(1);
      g.add(1.0);
      h.observe(static_cast<double>((i + static_cast<std::size_t>(k)) % 3));
    }
  });

  constexpr std::int64_t kTotal = static_cast<std::int64_t>(kTasks) * kOpsPerTask;
  EXPECT_EQ(c.value(), kTotal);
  EXPECT_DOUBLE_EQ(g.value(), static_cast<double>(kTotal));
  EXPECT_EQ(h.count(), kTotal);
  std::int64_t bucket_sum = 0;
  for (const std::int64_t b : h.bucket_counts()) bucket_sum += b;
  EXPECT_EQ(bucket_sum, kTotal);

  // The pool's own built-in metrics also saw every task exactly once.
  EXPECT_EQ(obs::registry().counter("analysis.thread_pool.tasks").value(), kTasks);
  EXPECT_EQ(obs::registry().histogram("analysis.thread_pool.task_latency_us", {}).count(), kTasks);
}

TEST_F(ObsTest, TracerDeliversEveryEventUnderConcurrentEmitters) {
  constexpr int kTasks = 32;
  constexpr int kOpsPerTask = 500;
  // Capacity above the event count: nothing may drop, totals must be exact.
  auto ring = std::make_shared<obs::RingBufferSink>(kTasks * kOpsPerTask + 16);
  auto summary = std::make_shared<obs::SummarySink>();
  obs::ScopedTracing tracing(ring);
  obs::Tracer::instance().add_sink(summary);

  analysis::ThreadPool pool(4);
  analysis::parallel_for(pool, kTasks, [&](std::size_t i) {
    for (int k = 0; k < kOpsPerTask; ++k) {
      TRACE_EVENT(.kind = EventKind::kSpeedChange, .t = static_cast<double>(k),
                  .job = static_cast<JobId>(i));
    }
  });

  constexpr std::size_t kTotal = static_cast<std::size_t>(kTasks) * kOpsPerTask;
  EXPECT_EQ(ring->size(), kTotal);
  EXPECT_EQ(ring->dropped(), 0u);
  EXPECT_EQ(summary->count(EventKind::kSpeedChange), kTotal);

  // Per-emitter event counts are exact too (delivery is lossless, not
  // merely approximately fair).
  std::vector<int> per_job(kTasks, 0);
  for (const TraceEvent& ev : ring->events()) {
    ASSERT_GE(ev.job, 0);
    ASSERT_LT(ev.job, kTasks);
    ++per_job[static_cast<std::size_t>(ev.job)];
  }
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(per_job[static_cast<std::size_t>(i)], kOpsPerTask);
  obs::Tracer::instance().remove_sink(summary.get());
}

TEST_F(ObsTest, ReportJsonRoundTripsThroughOwnParser) {
  obs::registry().counter("sim.c_machine.steps").add(64);
  obs::registry().counter("numerics.roots.brent_iters").add(7);
  obs::registry().gauge("analysis.ratio").set(2.391);
  obs::registry().histogram("sim.latency_us", {1.0, 10.0}).observe(3.5);
  obs::profiler().record("sim.run", 1500);
  obs::profiler().record("sim.run", 500);

  const obs::JsonValue doc = obs::parse_json(obs::observability_report_json());
  const obs::JsonValue& metrics = doc.at("metrics");
  EXPECT_DOUBLE_EQ(metrics.at("counters").at("sim.c_machine.steps").number, 64.0);
  EXPECT_DOUBLE_EQ(metrics.at("counters").at("numerics.roots.brent_iters").number, 7.0);
  EXPECT_DOUBLE_EQ(metrics.at("gauges").at("analysis.ratio").number, 2.391);
  EXPECT_DOUBLE_EQ(metrics.at("histograms").at("sim.latency_us").at("count").number, 1.0);
  const obs::JsonValue& prof = doc.at("profile").at("sim.run");
  EXPECT_DOUBLE_EQ(prof.at("count").number, 2.0);
  EXPECT_DOUBLE_EQ(prof.at("total_ns").number, 2000.0);
}

TEST_F(ObsTest, SnapshotJsonEmitsKeysSorted) {
  // Registered deliberately out of order; serialization must not care.
  obs::registry().counter("z.last").add(1);
  obs::registry().counter("a.first").add(1);
  obs::registry().counter("m.middle").add(1);
  obs::profiler().record("z.scope", 10);
  obs::profiler().record("a.scope", 10);

  const std::string metrics = obs::registry().snapshot_json();
  EXPECT_LT(metrics.find("\"a.first\""), metrics.find("\"m.middle\""));
  EXPECT_LT(metrics.find("\"m.middle\""), metrics.find("\"z.last\""));
  const std::string profile = obs::profiler().snapshot_json();
  EXPECT_LT(profile.find("\"a.scope\""), profile.find("\"z.scope\""));
}

TEST_F(ObsTest, SnapshotJsonIsLocaleIndependent) {
  obs::registry().gauge("locale.check").set(3.14159265358979);
  obs::profiler().record("locale.scope", 1234);

  // A locale whose decimal separator is ',' would corrupt "%.17g" output if
  // the formatter trusted it; json_util.h normalizes the separator.
  const char* prev = std::setlocale(LC_NUMERIC, nullptr);
  const std::string saved = prev ? prev : "C";
  if (std::setlocale(LC_NUMERIC, "de_DE.UTF-8") == nullptr &&
      std::setlocale(LC_NUMERIC, "de_DE.utf8") == nullptr) {
    GTEST_SKIP() << "no de_DE locale installed; cannot exercise the ',' separator";
  }
  const std::string metrics = obs::registry().snapshot_json();
  const std::string profile = obs::profiler().snapshot_json();
  std::setlocale(LC_NUMERIC, saved.c_str());

  EXPECT_NE(metrics.find("3.14159265358979"), std::string::npos) << metrics;
  EXPECT_EQ(metrics.find("3,14"), std::string::npos) << metrics;  // the de_DE spelling
  // Parse back (under the restored default locale) and compare the value.
  const obs::JsonValue doc = obs::parse_json(metrics);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("locale.check").number, 3.14159265358979);
  EXPECT_NE(profile.find("\"locale.scope\""), std::string::npos);
}

TEST_F(ObsTest, ProfilerIsExactUnderConcurrentWorkers) {
  constexpr int kTasks = 48;
  analysis::ThreadPool pool(4);
  analysis::parallel_for(pool, kTasks, [&](std::size_t) {
    OBS_TIMED_SCOPE("hammer.scope");
  });
  const std::vector<obs::ProfileEntry> snap = obs::profiler().snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].count, kTasks);
  EXPECT_GE(snap[0].total_ns, 0);
  EXPECT_LE(snap[0].min_ns, snap[0].max_ns);
}

}  // namespace
}  // namespace speedscale
