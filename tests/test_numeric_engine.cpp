// Tests for the generic numeric engine (sim/numeric_engine.h): closed-form
// cross-validation on power laws, and the paper's general-P lemmas (3 and 6)
// on non-polynomial power functions.
#include <gtest/gtest.h>

#include <cmath>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/core/power.h"
#include "src/sim/numeric_engine.h"
#include "src/workload/generators.h"

namespace speedscale {
namespace {

Instance uniform_instance(int n, std::uint64_t seed) {
  return workload::generate({.n_jobs = n, .arrival_rate = 1.2, .seed = seed});
}

TEST(NumericEngine, GenericCMatchesExactCOnPowerLaw) {
  const double alpha = 2.5;
  const Instance inst = uniform_instance(8, 11);
  const PowerLaw p(alpha);
  const SampledRun num = run_generic_c(inst, p);
  const RunResult exact = run_c(inst, alpha);
  EXPECT_NEAR(num.energy, exact.metrics.energy, 1e-4 * exact.metrics.energy);
  EXPECT_NEAR(num.fractional_flow, exact.metrics.fractional_flow,
              1e-4 * exact.metrics.fractional_flow);
  for (const Job& j : inst.jobs()) {
    EXPECT_NEAR(num.completions.at(j.id), exact.schedule.completion(j.id),
                1e-4 * std::max(1.0, exact.schedule.completion(j.id)));
  }
}

TEST(NumericEngine, GenericCWithDensitiesMatchesExact) {
  const double alpha = 3.0;
  const Instance inst = workload::generate(
      {.n_jobs = 8, .density_mode = workload::DensityMode::kClasses, .seed = 4});
  const PowerLaw p(alpha);
  const SampledRun num = run_generic_c(inst, p);
  const RunResult exact = run_c(inst, alpha);
  EXPECT_NEAR(num.energy, exact.metrics.energy, 2e-4 * exact.metrics.energy);
  EXPECT_NEAR(num.integral_flow, exact.metrics.integral_flow,
              2e-4 * exact.metrics.integral_flow);
}

TEST(NumericEngine, GenericNCMatchesExactNCOnPowerLaw) {
  const double alpha = 2.0;
  const Instance inst = uniform_instance(8, 19);
  const PowerLaw p(alpha);
  const SampledRun num = run_generic_nc_uniform(inst, p);
  const RunResult exact = run_nc_uniform(inst, alpha);
  EXPECT_NEAR(num.energy, exact.metrics.energy, 5e-3 * exact.metrics.energy);
  EXPECT_NEAR(num.fractional_flow, exact.metrics.fractional_flow,
              5e-3 * exact.metrics.fractional_flow);
}

TEST(NumericEngine, WeightLeftQueriesPreEventValue) {
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.5, 1.0, 1.0}});
  const PowerLaw p(2.0);
  const SampledRun c = run_generic_c(inst, p);
  const PowerLawKinematics kin(2.0);
  const double expect = kin.decay_weight_after(1.0, 1.0, 0.5);
  EXPECT_NEAR(c.weight_left(0.5), expect, 1e-4);
}

// --- The general-power-function lemmas (experiment E11's invariants) -----

class GeneralPowerLemmas : public ::testing::TestWithParam<int> {
 protected:
  [[nodiscard]] std::unique_ptr<PowerFunction> make_power() const {
    switch (GetParam()) {
      case 0:
        return std::make_unique<LeakyPowerLaw>(2.0, 0.5);
      case 1:
        return std::make_unique<LeakyPowerLaw>(3.0, 2.0);
      default:
        return std::make_unique<ExpPower>();
    }
  }
};

// Lemma 3 holds for EVERY power function: NC and C consume equal energy.
TEST_P(GeneralPowerLemmas, Lemma3EnergyEquality) {
  const auto power = make_power();
  const Instance inst = uniform_instance(6, 23);
  const SampledRun c = run_generic_c(inst, *power);
  const SampledRun nc = run_generic_nc_uniform(inst, *power);
  EXPECT_NEAR(nc.energy, c.energy, 5e-3 * c.energy) << power->name();
}

// Lemma 6 holds for EVERY power function: the speed profiles are
// measure-preserving rearrangements (equal level-set measures).
TEST_P(GeneralPowerLemmas, Lemma6LevelSetsAgree) {
  const auto power = make_power();
  const Instance inst = uniform_instance(5, 29);
  const SampledRun c = run_generic_c(inst, *power);
  const SampledRun nc = run_generic_nc_uniform(inst, *power);
  double s_max = 0.0;
  for (double s : c.speed) s_max = std::max(s_max, s);
  ASSERT_GT(s_max, 0.0);
  double makespan = std::max(c.t.back(), nc.t.back());
  for (double f : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double x = f * s_max;
    EXPECT_NEAR(nc.time_at_or_above(x), c.time_at_or_above(x), 2e-2 * makespan)
        << power->name() << " at threshold " << x;
  }
}

INSTANTIATE_TEST_SUITE_P(PowerFns, GeneralPowerLemmas, ::testing::Values(0, 1, 2));

TEST(NumericEngine, RejectsNonUniformNC) {
  const Instance mixed({Job{kNoJob, 0.0, 1.0, 1.0}, Job{kNoJob, 0.0, 1.0, 2.0}});
  const PowerLaw p(2.0);
  EXPECT_THROW(run_generic_nc_uniform(mixed, p), ModelError);
}

TEST(NumericEngine, SubstepRefinementConverges) {
  const Instance inst = uniform_instance(4, 41);
  const PowerLaw p(2.0);
  NumericConfig coarse;
  coarse.substeps_per_interval = 256;
  NumericConfig fine;
  fine.substeps_per_interval = 4096;
  const SampledRun a = run_generic_c(inst, p, coarse);
  const SampledRun b = run_generic_c(inst, p, fine);
  const RunResult exact = run_c(inst, 2.0);
  const double err_a = std::abs(a.energy - exact.metrics.energy);
  const double err_b = std::abs(b.energy - exact.metrics.energy);
  EXPECT_LE(err_b, err_a + 1e-12);
}

TEST(NumericEngine, SampleVectorsGrowGeometricallyNotPerInterval) {
  // Stress the sample storage: many inter-event intervals, each appending up
  // to substeps+1 samples.  Capacity is reserved once per interval with
  // geometric growth, so the RK4 evolve loop itself never reallocates and the
  // total number of growth events stays logarithmic in the sample count —
  // not linear in push_backs (the pre-fix worst case) or in intervals.
  const Instance inst = uniform_instance(40, 7);
  const PowerLaw p(2.0);
  NumericConfig cfg;
  cfg.substeps_per_interval = 512;
  const SampledRun run = run_generic_c(inst, p, cfg);
  ASSERT_GT(run.t.size(), 10'000u);
  ASSERT_EQ(run.t.size(), run.speed.size());
  ASSERT_EQ(run.t.size(), run.weight.size());
  const double log_bound =
      std::ceil(std::log2(static_cast<double>(run.t.size()) / 1024.0)) + 2.0;
  EXPECT_LE(static_cast<double>(run.sample_reallocs), log_bound)
      << "samples=" << run.t.size();
  EXPECT_GE(run.t.capacity(), run.t.size());

  const SampledRun nc = run_generic_nc_uniform(inst, p, cfg);
  EXPECT_LE(static_cast<double>(nc.sample_reallocs),
            std::ceil(std::log2(static_cast<double>(nc.t.size()) / 1024.0)) + 2.0);
}

}  // namespace
}  // namespace speedscale
