#!/usr/bin/env python3
"""Plot competitiveness-certificate streams from `trace_tool --cert-out`.

Each input is the certificate JSONL written by the potential-function ledger
(src/obs/cert/): one record per simulator event with the cumulative slack
    slack(t) = c * OPT_lb(t) - ALG(t) - Phi(t)
plus a trailing {"kind":"cert_summary",...} line.  Two views:

  default  -- slack over time, one step curve per input (fractional, and the
              integral ledger with --int); violations (slack < 0) are marked.
  --hist   -- histogram of per-release slacks pooled across all inputs (the
              E22 view: how much amortization headroom a workload sweep has).

Usage:
  examples/trace_tool --cert-out nc_cert.jsonl
  scripts/plot_certificates.py nc_cert.jsonl -o slack.png
  scripts/plot_certificates.py sweep_*.jsonl --hist -o slack_hist.png

Requires matplotlib (not needed by the C++ build or tests).
"""
import argparse
import sys

sys.path.insert(0, sys.path[0])
import _plot_common as common


def read_certificates(path):
    """Returns (records, summary) where records are the per-event dicts
    (with floats materialized) and summary is the cert_summary line."""
    records, summary = [], None
    for lineno, rec in common.iter_jsonl(path, "is this a `trace_tool --cert-out` file?"):
        if rec.get("kind") == "cert_summary":
            summary = rec
            continue
        if "event" not in rec or "slack" not in rec:
            common.die(f"{path}:{lineno}: record has no event/slack fields "
                       f"(is this a `trace_tool --cert-out` file?)")
        records.append({
            "t": common.number(rec, "t", path, lineno),
            "event": rec["event"],
            "slack": common.number(rec, "slack", path, lineno),
            "slack_int": common.number(rec, "slack_int", path, lineno),
        })
    if not records:
        common.die(f"{path}: no certificate records — nothing to plot "
                   f"(empty stream, or only a summary line)")
    return records, summary


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("certs", nargs="+", help="certificate JSONL files (--cert-out)")
    ap.add_argument("-o", "--out", default="certificates.png")
    ap.add_argument("--int", dest="integral", action="store_true",
                    help="also plot the integral-objective (Theorem 9) slack")
    ap.add_argument("--hist", action="store_true",
                    help="histogram of per-release slacks across all inputs")
    args = ap.parse_args()

    # Read and validate every input before touching matplotlib, so a bad or
    # empty file gets its own diagnostic even where matplotlib is missing.
    series = []
    for path in args.certs:
        series.append((path, *read_certificates(path)))

    plt = common.require_matplotlib()
    fig, ax = plt.subplots(figsize=(9, 4.5))
    if args.hist:
        slacks = [r["slack"] for _, records, _ in series
                  for r in records if r["event"] == "job_release"]
        ax.hist(slacks, bins=min(40, max(10, len(slacks) // 8)), edgecolor="black",
                linewidth=0.5)
        ax.axvline(0.0, color="red", linewidth=1.0, linestyle="--", label="violation boundary")
        ax.set_xlabel("certificate slack at release")
        ax.set_ylabel("count")
        ax.set_title(f"{len(slacks)} release certificates from {len(series)} run(s)")
    else:
        for path, records, _ in series:
            t = [r["t"] for r in records]
            slack = [r["slack"] for r in records]
            ax.plot(t, slack, label=f"{path} (frac)", linewidth=1.2, drawstyle="steps-post")
            if args.integral:
                ax.plot(t, [r["slack_int"] for r in records], label=f"{path} (int)",
                        linewidth=1.0, linestyle=":", drawstyle="steps-post")
            bad_t = [r["t"] for r in records if min(r["slack"], r["slack_int"]) < 0.0]
            if bad_t:
                ax.plot(bad_t, [0.0] * len(bad_t), "rv", markersize=6, label=f"{path} violations")
        ax.axhline(0.0, color="red", linewidth=0.8, linestyle="--")
        ax.set_xlabel("time")
        ax.set_ylabel("slack  c*OPT_lb - ALG - Phi")
    ax.legend()
    ax.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(args.out, dpi=150)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
