#!/usr/bin/env python3
"""Compare two bench ledgers (speedscale.bench_ledger/1) as a regression gate.

Noise-aware policy, per docs/observability.md:

* **Work counters hard-fail.**  The simulators are exact and seeded, so ODE
  substeps, root iterations, bracket expansions, retries, and preemptions
  are deterministic; any delta against the baseline is a real behavioral
  change — either a regression or an intentional change that must ship with
  a regenerated baseline (scripts/run_bench_suite.py --out BENCH_PR3.json).
* **Wall time is advisory.**  Machine noise on these loops is ~±10%
  (EXPERIMENTS.md E19), so the gate only *warns* when the min-over-
  repetitions wall time moves more than --wall-tolerance (default 25%), and
  never fails on it.
* **Any baseline entry missing from the current ledger is a hard failure** —
  counter-carrying or wall-only alike.  A bench that silently disappears is
  indistinguishable from one that silently stopped being measured; shrinking
  the baseline is an intentional change that must ship with a regenerated
  ledger.  New entries (current-only) stay advisory.

Exit status: 0 ok (possibly with warnings), 1 counter regression or missing
baseline entry, 2 usage/schema error.

`--manifest FILE` compares every (baseline, current) pair listed in a
speedscale.bench_manifest/1 document in one invocation — the CI loop over
all committed BENCH ledgers — failing if any pair fails.

`--self-test` runs the gate against synthetic ledgers with an injected
counter regression and verifies it trips; wired into ctest
(bench_compare_selftest) so the gate itself is under test.
"""
import argparse
import json
import sys

SCHEMA = "speedscale.bench_ledger/1"


def load_ledger(path):
    try:
        with open(path) as f:
            ledger = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e}")
    if ledger.get("schema") != SCHEMA:
        sys.exit(f"error: {path}: schema {ledger.get('schema')!r}, expected {SCHEMA!r}")
    return ledger


def compare(baseline, current, wall_tolerance=0.25, out=sys.stdout):
    """Returns (failures, warnings) as lists of message strings."""
    failures, warnings = [], []
    base_entries = baseline.get("entries", {})
    cur_entries = current.get("entries", {})

    for name, base in sorted(base_entries.items()):
        cur = cur_entries.get(name)
        if cur is None:
            # Hard failure even for wall-only entries: a vanished bench is a
            # coverage regression regardless of what it recorded.
            failures.append(f"{name}: present in baseline, missing from current ledger")
            continue

        base_counters = base.get("counters", {})
        cur_counters = cur.get("counters", {})
        diverging = [cname for cname in sorted(set(base_counters) | set(cur_counters))
                     if base_counters.get(cname) != cur_counters.get(cname)]
        if diverging:
            # Full sorted diff of every diverging counter, so a regression is
            # diagnosable from the CI log alone — no re-run needed.
            width = max(len(c) for c in diverging)
            lines = [f"{name}: {len(diverging)} diverging counter(s):",
                     f"  {'counter':<{width}} {'baseline':>16} {'current':>16} {'delta':>12}"]
            for cname in diverging:
                b, c = base_counters.get(cname), cur_counters.get(cname)
                bs = "(missing)" if b is None else str(b)
                cs = "(missing)" if c is None else str(c)
                delta = f"{c - b:+d}" if b is not None and c is not None else "n/a"
                lines.append(f"  {cname:<{width}} {bs:>16} {cs:>16} {delta:>12}")
            failures.append("\n".join(lines))

        base_wall = min(base.get("wall_ns") or [0])
        cur_wall = min(cur.get("wall_ns") or [0])
        if base_wall > 0 and cur_wall > 0:
            ratio = cur_wall / base_wall
            if ratio > 1.0 + wall_tolerance:
                warnings.append(f"{name}: wall time {ratio:.2f}x baseline "
                                f"({base_wall / 1e6:.3f} -> {cur_wall / 1e6:.3f} ms) — advisory, "
                                f"machine noise is not gated")

    for name in sorted(set(cur_entries) - set(base_entries)):
        warnings.append(f"{name}: new entry (not in baseline)")

    for msg in failures:
        print(f"FAIL  {msg}", file=out)
    for msg in warnings:
        print(f"warn  {msg}", file=out)
    n = len(base_entries)
    print(f"compared {n} baseline entries: {len(failures)} failure(s), "
          f"{len(warnings)} warning(s)", file=out)
    return failures, warnings


def make_ledger(entries):
    return {"schema": SCHEMA, "suite": "self-test", "config": {}, "entries": entries}


MANIFEST_SCHEMA = "speedscale.bench_manifest/1"


def run_manifest(path, wall_tolerance):
    """Compares every (baseline, current) pair in the manifest; returns the
    number of pairs with failures."""
    try:
        with open(path) as f:
            manifest = json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e.strerror}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e}")
    if manifest.get("schema") != MANIFEST_SCHEMA:
        sys.exit(f"error: {path}: schema {manifest.get('schema')!r}, "
                 f"expected {MANIFEST_SCHEMA!r}")
    pairs = manifest.get("pairs")
    if not isinstance(pairs, list) or not pairs:
        sys.exit(f"error: {path}: expected a non-empty 'pairs' list")
    failed = 0
    for pair in pairs:
        label = pair.get("label", pair.get("baseline", "?"))
        print(f"== {label}: {pair['baseline']} vs {pair['current']}")
        failures, _ = compare(load_ledger(pair["baseline"]), load_ledger(pair["current"]),
                              wall_tolerance=wall_tolerance)
        failed += 1 if failures else 0
    print(f"manifest: {len(pairs)} pair(s) compared, {failed} failed")
    return failed


def self_test():
    base = make_ledger({
        "sim.x/64": {"counters": {"sim.c_machine.segments": 100}, "repetitions": 2,
                     "source": "runner", "wall_ns": [1e6, 1.1e6]},
        "gbench.perf/BM_X": {"counters": {}, "repetitions": 1,
                             "source": "google_benchmark", "wall_ns": [2e6]},
    })

    import copy
    import io

    # Identical ledgers pass.
    f, w = compare(base, copy.deepcopy(base), out=io.StringIO())
    assert not f and not w, (f, w)

    # An injected counter regression (one extra segment, plus a counter that
    # only exists on one side each way) must hard-fail, and the failure must
    # carry the full sorted diff: every diverging counter with baseline /
    # current / delta and (missing) markers.
    hot = copy.deepcopy(base)
    hot["entries"]["sim.x/64"]["counters"]["sim.c_machine.segments"] = 101
    hot["entries"]["sim.x/64"]["counters"]["sim.roots.iters"] = 7
    base["entries"]["sim.x/64"]["counters"]["sim.retries"] = 3
    diff_out = io.StringIO()
    f, _ = compare(base, hot, out=diff_out)
    assert f, "injected counter regression was not detected"
    diff = diff_out.getvalue()
    assert "3 diverging counter(s)" in diff, diff
    for expected in ("sim.c_machine.segments", "sim.roots.iters", "sim.retries",
                     "(missing)", "+1"):
        assert expected in diff, f"diff section missing {expected!r}:\n{diff}"
    # Sorted order within the diff table.
    assert diff.index("sim.c_machine.segments") < diff.index("sim.retries") \
        < diff.index("sim.roots.iters"), diff
    del base["entries"]["sim.x/64"]["counters"]["sim.retries"]

    # A vanished pinned (counter-carrying) bench must hard-fail.
    gone = copy.deepcopy(base)
    del gone["entries"]["sim.x/64"]
    f, _ = compare(base, gone, out=io.StringIO())
    assert f, "missing pinned bench was not detected"

    # A vanished *wall-only* bench (empty counters — the google-benchmark
    # rows) must hard-fail too: disappearing coverage is never advisory.
    gone_wall = copy.deepcopy(base)
    del gone_wall["entries"]["gbench.perf/BM_X"]
    f, _ = compare(base, gone_wall, out=io.StringIO())
    assert f, "missing wall-only bench was not detected"

    # A 2x wall-time delta alone only warns.
    slow = copy.deepcopy(base)
    slow["entries"]["sim.x/64"]["wall_ns"] = [2e6, 2.2e6]
    f, w = compare(base, slow, out=io.StringIO())
    assert not f and w, (f, w)

    # End-to-end through the CLI path: the injected regression exits nonzero.
    import subprocess
    import tempfile

    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fb, \
         tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fc:
        json.dump(base, fb)
        json.dump(hot, fc)
    rc = subprocess.run([sys.executable, __file__, fb.name, fc.name],
                        capture_output=True).returncode
    assert rc == 1, f"CLI exit code for a counter regression was {rc}, expected 1"
    rc = subprocess.run([sys.executable, __file__, fb.name, fb.name],
                        capture_output=True).returncode
    assert rc == 0, f"CLI exit code for identical ledgers was {rc}, expected 0"

    # Manifest mode: one clean pair and one regressed pair -> exit 1; two
    # clean pairs -> exit 0.
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fm:
        json.dump({"schema": MANIFEST_SCHEMA,
                   "pairs": [{"baseline": fb.name, "current": fb.name, "label": "clean"},
                             {"baseline": fb.name, "current": fc.name, "label": "hot"}]}, fm)
    rc = subprocess.run([sys.executable, __file__, "--manifest", fm.name],
                        capture_output=True).returncode
    assert rc == 1, f"manifest exit code with a regressed pair was {rc}, expected 1"
    with tempfile.NamedTemporaryFile("w", suffix=".json", delete=False) as fm2:
        json.dump({"schema": MANIFEST_SCHEMA,
                   "pairs": [{"baseline": fb.name, "current": fb.name, "label": "clean"}]},
                  fm2)
    rc = subprocess.run([sys.executable, __file__, "--manifest", fm2.name],
                        capture_output=True).returncode
    assert rc == 0, f"manifest exit code for clean pairs was {rc}, expected 0"

    print("bench_compare self-test: ok")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("baseline", nargs="?", help="committed ledger (e.g. BENCH_PR3.json)")
    ap.add_argument("current", nargs="?", help="freshly generated ledger")
    ap.add_argument("--wall-tolerance", type=float, default=0.25,
                    help="advisory wall-time warning threshold (fraction, default 0.25)")
    ap.add_argument("--manifest",
                    help="compare every pair in a speedscale.bench_manifest/1 document")
    ap.add_argument("--self-test", action="store_true",
                    help="verify the gate trips on an injected counter regression")
    args = ap.parse_args()

    if args.self_test:
        self_test()
        return

    if args.manifest:
        sys.exit(1 if run_manifest(args.manifest, args.wall_tolerance) else 0)

    if not args.baseline or not args.current:
        ap.error("baseline and current ledger paths are required (or --self-test/--manifest)")
    failures, _ = compare(load_ledger(args.baseline), load_ledger(args.current),
                          wall_tolerance=args.wall_tolerance)
    sys.exit(1 if failures else 0)


if __name__ == "__main__":
    main()
