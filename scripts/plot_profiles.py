#!/usr/bin/env python3
"""Plot CSVs exported by trace_tool / analysis::export_*.

Usage:
  examples/trace_tool --algo nc --profile nc.csv --jobs nc_jobs.csv
  examples/trace_tool --algo c  --profile c.csv
  scripts/plot_profiles.py nc.csv c.csv -o profiles.png

Requires matplotlib (not needed by the C++ build or tests).
"""
import argparse
import csv
import sys


def read_profile(path):
    t, speed, power = [], [], []
    with open(path) as f:
        for row in csv.DictReader(f):
            t.append(float(row["t"]))
            speed.append(float(row["speed"]))
            power.append(float(row["power"]))
    return t, speed, power


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("profiles", nargs="+", help="profile CSVs from --profile")
    ap.add_argument("-o", "--out", default="profiles.png")
    ap.add_argument("--power", action="store_true", help="plot power instead of speed")
    args = ap.parse_args()

    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt
    except ImportError:
        sys.exit("matplotlib is required: pip install matplotlib")

    fig, ax = plt.subplots(figsize=(9, 4.5))
    for path in args.profiles:
        t, speed, power = read_profile(path)
        ax.plot(t, power if args.power else speed, label=path, linewidth=1.2)
    ax.set_xlabel("time")
    ax.set_ylabel("power P(s(t))" if args.power else "speed s(t)")
    ax.legend()
    ax.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(args.out, dpi=150)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
