#!/usr/bin/env python3
"""Plot speed profiles exported by trace_tool / analysis::export_*.

Accepts two input formats, detected by extension:
  *.csv    -- sampled profile from `trace_tool --profile` (t,speed,power rows)
  *.jsonl  -- structured event trace from `trace_tool --trace`; the speed
              curve is rebuilt from speed_change events (steps-post), and
              power = speed**alpha with alpha taken from the leading
              "trace_tool" phase_boundary meta event (value field).

Usage:
  examples/trace_tool --algo nc --profile nc.csv --jobs nc_jobs.csv
  examples/trace_tool --algo nc --trace nc.jsonl
  scripts/plot_profiles.py nc.csv nc.jsonl -o profiles.png

Requires matplotlib (not needed by the C++ build or tests).
"""
import argparse
import csv
import sys

sys.path.insert(0, sys.path[0])
import _plot_common as common


def read_profile(path):
    t, speed, power = [], [], []
    with open(path) as f:
        for i, row in enumerate(csv.DictReader(f), start=2):
            try:
                t.append(float(row["t"]))
                speed.append(float(row["speed"]))
                power.append(float(row["power"]))
            except (KeyError, TypeError, ValueError):
                common.die(f"{path}:{i}: expected t,speed,power columns "
                           f"(is this a `trace_tool --profile` CSV?)")
    if not t:
        common.die(f"{path}: no profile rows — nothing to plot "
                   f"(empty or header-only CSV)")
    return t, speed, power


def read_jsonl_trace(path):
    """Rebuilds (t, speed, power) step series from a JSONL event trace."""
    alpha = None
    t, speed = [], []
    t_end = None
    for lineno, ev in common.iter_jsonl(path, "is this a `trace_tool --trace` file?"):
        kind = ev.get("kind")
        if kind == "phase_boundary":
            label = ev.get("label", "")
            if label == "trace_tool" and alpha is None:
                alpha = common.number(ev, "value", path, lineno)
            elif label == "trace_tool.end":
                t_end = common.number(ev, "t", path, lineno)
        elif kind == "speed_change":
            t.append(common.number(ev, "t", path, lineno))
            speed.append(common.number(ev, "value", path, lineno))
        elif kind == "job_complete":
            t_end = common.number(ev, "t", path, lineno)
    if not t:
        common.die(f"{path}: no speed_change events — nothing to plot "
                   f"(was the trace recorded with tracing enabled?)")
    if alpha is None:
        alpha = 2.0
        print(f"{path}: no trace_tool meta event; assuming alpha={alpha}", file=sys.stderr)
    # Close the staircase: the run ends at the last completion.
    if t_end is not None and t and t_end > t[-1]:
        t.append(t_end)
        speed.append(0.0)
    power = [s**alpha for s in speed]
    return t, speed, power


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("profiles", nargs="+", help="profile CSVs (--profile) or JSONL traces (--trace)")
    ap.add_argument("-o", "--out", default="profiles.png")
    ap.add_argument("--power", action="store_true", help="plot power instead of speed")
    args = ap.parse_args()

    # Read and validate every input before touching matplotlib, so a bad or
    # empty file gets its own diagnostic even where matplotlib is missing.
    series = []
    for path in args.profiles:
        try:
            reader = read_jsonl_trace if path.endswith(".jsonl") else read_profile
            series.append((path, *reader(path)))
        except OSError as e:
            common.die(f"cannot read {path}: {e.strerror}")

    plt = common.require_matplotlib()
    fig, ax = plt.subplots(figsize=(9, 4.5))
    for path, t, speed, power in series:
        ax.plot(t, power if args.power else speed, label=path, linewidth=1.2,
                drawstyle="steps-post" if path.endswith(".jsonl") else None)
    ax.set_xlabel("time")
    ax.set_ylabel("power P(s(t))" if args.power else "speed s(t)")
    ax.legend()
    ax.grid(alpha=0.3)
    fig.tight_layout()
    fig.savefig(args.out, dpi=150)
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
