#!/usr/bin/env python3
"""Run the pinned bench suite and assemble the bench ledger artifact.

Two sources merge into one speedscale.bench_ledger/1 document (schema:
src/obs/perf/bench_ledger.h, docs/observability.md):

1. `bench_suite_runner` (bench/bench_suite_runner.cpp) — the deterministic
   half: pinned seeds, wall time per repetition, and the MetricsRegistry
   work-counter snapshot per workload (byte-for-byte reproducible).
2. The google-benchmark wall-time suites (E13 `bench_perf`, E19
   `bench_obs_overhead`, E20 `bench_robust_overhead`), a pinned filter each,
   run with `--benchmark_format=json`.  Mostly wall-only (advisory in
   `bench_compare.py`), except custom gbench counters named `work_*`
   (e.g. BM_GuardedEngine_FaultRetry's attempted/committed split), which are
   deterministic per iteration and lifted into the hard-gated counter half.

The final file is written by this script (json.dumps, sorted keys, compact
separators), so regenerating on the same machine/toolchain is byte-stable in
the counter half.  Refresh the committed baselines with:

    scripts/run_bench_suite.py --build-dir build --out BENCH_PR3.json \
        --pr5-out BENCH_PR5.json --pr6-out BENCH_PR6.json \
        --pr7-out BENCH_PR7.json --pr8-out BENCH_PR8.json \
        --pr9-out BENCH_PR9.json --pr10-out BENCH_PR10.json

`--jobs N` shards the runner's (bench x repetition) grid across N workers;
the counter half of the ledger is byte-identical at any N (the sweep
engine's determinism contract, docs/performance.md), so CI exercises the
parallel path with --jobs $(nproc) against the same committed baseline.

The heavyweight sweep-suite pair (analysis.sweep_suite/8x1 vs /8x8 — same
counters, serial vs parallel wall) lives in its own ledger, written when
--pr5-out is given; the main ledger excludes it.  The PR5 run always uses
one *outer* worker so the 8x1/8x8 wall comparison is not skewed by the two
entries co-running.

Use --quick in CI: fewer repetitions and short google-benchmark min-times;
counters are per-run deterministic, so quick and full ledgers agree on them.
"""
import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

SCHEMA = "speedscale.bench_ledger/1"

# (binary, pinned --benchmark_filter): the google-benchmark half.
GBENCH_SUITES = [
    ("bench_perf", "^BM_AlgorithmC/1024$|^BM_AlgorithmNCUniform/1024$|^BM_NCNonUniform/8$"),
    ("bench_obs_overhead", "^BM_AlgorithmC_ObsDisabled/1024$|^BM_AlgorithmNCUniform_ObsDisabled/1024$"),
    ("bench_robust_overhead",
     "^BM_GuardedEngine_CleanPath/8$|^BM_NumericEngine_NoPlan/8$|^BM_GuardedEngine_FaultRetry/8$"),
]

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# gbench JSON keys that are report metadata, not user counters.
GBENCH_META_KEYS = frozenset({
    "name", "run_name", "run_type", "repetitions", "repetition_index", "threads",
    "iterations", "real_time", "cpu_time", "time_unit", "family_index",
    "per_family_instance_index", "items_per_second", "bytes_per_second",
    "aggregate_name", "aggregate_unit", "label", "error_occurred", "error_message",
})


def run_suite_runner(build_dir, quick, jobs=1, extra_args=()):
    runner = os.path.join(build_dir, "bench", "bench_suite_runner")
    if not os.path.exists(runner):
        sys.exit(f"error: {runner} not found — build the Release tree first "
                 f"(cmake --build {build_dir})")
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        tmp_path = tmp.name
    try:
        cmd = [runner, "--out", tmp_path, "--jobs", str(jobs)] + list(extra_args)
        if quick:
            cmd.append("--quick")
        print("+", " ".join(cmd), flush=True)
        subprocess.run(cmd, check=True)
        with open(tmp_path) as f:
            ledger = json.load(f)
    finally:
        os.unlink(tmp_path)
    if ledger.get("schema") != SCHEMA:
        sys.exit(f"error: runner emitted schema {ledger.get('schema')!r}, expected {SCHEMA!r}")
    return ledger


def run_gbench(build_dir, binary, bench_filter, quick, repetitions):
    path = os.path.join(build_dir, "bench", binary)
    if not os.path.exists(path):
        print(f"warning: {path} not found; skipping its wall-time entries", file=sys.stderr)
        return {}
    cmd = [
        path,
        f"--benchmark_filter={bench_filter}",
        "--benchmark_format=json",
        f"--benchmark_repetitions={repetitions}",
        "--benchmark_report_aggregates_only=false",
    ]
    if quick:
        cmd.append("--benchmark_min_time=0.01")
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.run(cmd, check=True, capture_output=True, text=True)
    report = json.loads(proc.stdout)
    entries = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") != "iteration":
            continue  # skip gbench's own mean/median/stddev aggregate rows
        name = bench["run_name"] if "run_name" in bench else bench["name"]
        wall_ns = bench["real_time"] * TIME_UNIT_NS[bench.get("time_unit", "ns")]
        entry = entries.setdefault(
            f"gbench.{binary}/{name}",
            {"counters": {}, "repetitions": 0, "source": "google_benchmark", "wall_ns": []},
        )
        entry["wall_ns"].append(wall_ns)
        entry["repetitions"] += 1
        # Custom counters named work_* are per-iteration deterministic work
        # tallies (e.g. the guarded engine's attempted/committed units);
        # lifting them into `counters` puts them under bench_compare.py's
        # hard gate.  Reps must agree, like the runner's determinism check.
        work = {k: int(round(v)) for k, v in bench.items()
                if k.startswith("work_") and k not in GBENCH_META_KEYS}
        if work:
            if entry["counters"] and entry["counters"] != work:
                sys.exit(f"error: {name}: work_* counters differ between repetitions — "
                         f"the workload is not deterministic")
            entry["counters"] = work
    return entries


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", default="build", help="CMake build tree (Release)")
    ap.add_argument("--out", default="BENCH_PR3.json", help="ledger output path")
    ap.add_argument("--jobs", type=int, default=1,
                    help="runner worker threads (counters identical at any value)")
    ap.add_argument("--pr5-out", default=None,
                    help="also write the sweep-suite ledger (analysis.sweep_suite/8x1 "
                         "vs /8x8: identical counters, serial vs parallel wall) here")
    ap.add_argument("--pr6-out", default=None,
                    help="also write the live-telemetry ledger (live.* pinned counters "
                         "under a running sampler + E23 overhead wall rows) here")
    ap.add_argument("--pr7-out", default=None,
                    help="also write the supervised-fleet ledger (same pinned benches "
                         "sharded across --fleet worker processes; counters must match "
                         "the serial ledger entry-for-entry) here")
    ap.add_argument("--pr8-out", default=None,
                    help="also write the fleet-observability ledger (obs.fleet_* wire-"
                         "format byte tallies + plane-on vs plane-off fleet wall rows, "
                         "the E25 overhead evidence) here")
    ap.add_argument("--pr9-out", default=None,
                    help="also write the perf-history ledger (obs.history_* trajectory "
                         "store round-trip tallies + supervisor.plan_* LPT planner "
                         "counters) here")
    ap.add_argument("--pr10-out", default=None,
                    help="also write the streaming-engine ledger (engine.stream pinned "
                         "suite entries + the 10M-job bench_engine_stream run with its "
                         "in-process RSS plateau assertion) here")
    ap.add_argument("--stream-jobs", type=int, default=10_000_000,
                    help="job count for the pr10 streaming harness run (default 10M; "
                         "the entry name scales with it, so the committed baseline "
                         "must be generated at the default)")
    ap.add_argument("--quick", action="store_true",
                    help="CI mode: 2 runner repetitions, short gbench min-times")
    ap.add_argument("--skip-gbench", action="store_true",
                    help="pinned runner only (counters + its wall times)")
    ap.add_argument("--suite", default=None, help="override the suite label")
    args = ap.parse_args()

    def write_ledger(path, ledger):
        with open(path + ".tmp", "w") as f:
            json.dump(ledger, f, sort_keys=True, separators=(",", ":"))
            f.write("\n")
        os.replace(path + ".tmp", path)
        n_counted = sum(1 for e in ledger["entries"].values() if e["counters"])
        print(f"wrote {path}: {len(ledger['entries'])} entries "
              f"({n_counted} with deterministic work counters)")

    # Each PR's bench family lives in its own ledger (like live.* and the
    # sweep-suite pair before it), so the older committed baselines keep
    # their entry sets.  PINNED_EXCLUDES is the shared exclusion list every
    # serial/fleet run of the common pinned suite uses.
    PINNED_EXCLUDES = ["--exclude", "analysis.sweep_suite",
                       "--exclude", "live.",
                       "--exclude", "obs.fleet",
                       "--exclude", "obs.history",
                       "--exclude", "supervisor.plan",
                       "--exclude", "engine.stream"]
    ledger = run_suite_runner(args.build_dir, args.quick, jobs=args.jobs,
                              extra_args=list(PINNED_EXCLUDES))
    if args.suite:
        ledger["suite"] = args.suite
    # Snapshot the runner's counter half before gbench rows are merged in:
    # the fleet cross-check below compares against exactly these entries.
    serial_counters = {name: entry["counters"]
                       for name, entry in ledger["entries"].items()}

    if not args.skip_gbench:
        reps = 1 if args.quick else 3
        for binary, bench_filter in GBENCH_SUITES:
            for name, entry in run_gbench(args.build_dir, binary, bench_filter,
                                          args.quick, reps).items():
                ledger["entries"][name] = entry

    write_ledger(args.out, ledger)

    if args.pr5_out:
        # Outer jobs pinned to 1: the /8x1 vs /8x8 wall comparison must not
        # have the two entries competing for the same cores.  Parallelism
        # under test is the *inner* sweep (the /8x8 workload's own workers).
        pr5 = run_suite_runner(args.build_dir, args.quick, jobs=1,
                               extra_args=["--filter", "analysis.sweep_suite",
                                           "--suite", "pr5-sweep"])
        write_ledger(args.pr5_out, pr5)

    if args.pr6_out:
        # Live telemetry (ISSUE 6 / E23): the live.* pinned counters prove
        # the sampler is unobservable in the deterministic half; the gbench
        # rows are the sampled-vs-unsampled overhead evidence (wall-only,
        # advisory in the gate).
        pr6 = run_suite_runner(args.build_dir, args.quick, jobs=1,
                               extra_args=["--filter", "live.",
                                           "--suite", "pr6-telemetry"])
        if not args.skip_gbench:
            pr6_filter = ("^BM_AlgorithmNCUniform_MetricsOnly/1024$"
                          "|^BM_AlgorithmNCUniform_SampledHub/1024$"
                          "|^BM_TelemetrySampleTick$|^BM_PrometheusExposition$")
            for name, entry in run_gbench(args.build_dir, "bench_obs_overhead",
                                          pr6_filter, args.quick,
                                          1 if args.quick else 3).items():
                pr6["entries"][name] = entry
        write_ledger(args.pr6_out, pr6)

    if args.pr7_out:
        # Supervised fleet (ISSUE 7 / E24): the same pinned benches, but
        # sharded across supervised worker *processes* through the shard-log
        # checkpoint path (src/robust/supervisor/).  The process boundary,
        # like --jobs' thread boundary, must be unobservable in the
        # deterministic half, so the fleet ledger's counters are cross-checked
        # entry-for-entry against the serial run above before being written.
        worker = os.path.join(args.build_dir, "examples", "sweep_worker")
        if not os.path.exists(worker):
            sys.exit(f"error: {worker} not found — build the Release tree first")
        with tempfile.TemporaryDirectory(prefix="speedscale_fleet_") as fleet_dir:
            pr7 = run_suite_runner(
                args.build_dir, args.quick, jobs=1,
                extra_args=PINNED_EXCLUDES +
                           ["--fleet", "2",
                            "--fleet-dir", os.path.join(fleet_dir, "work"),
                            "--worker", worker,
                            "--suite", "pr7-fleet"])
        if set(pr7["entries"]) != set(serial_counters):
            sys.exit("error: fleet ledger entry set differs from the serial run: "
                     f"{sorted(set(pr7['entries']) ^ set(serial_counters))}")
        for name, entry in pr7["entries"].items():
            if entry["counters"] != serial_counters[name]:
                sys.exit(f"error: {name}: fleet counters diverge from the serial "
                         f"run — the process boundary leaked into the deterministic half")
        write_ledger(args.pr7_out, pr7)

    if args.pr8_out:
        # Fleet observability plane (ISSUE 8 / E25).  Two halves:
        #
        # * the obs.fleet_* pinned benches — serialize/parse round-trips of
        #   the plane's wire formats (speedscale.log/1, fleet events/trace,
        #   the cost ledger), whose byte tallies sit under the hard counter
        #   gate: a format drift must be a conscious baseline refresh;
        # * a plane-on vs plane-off fleet run of the same pinned suite,
        #   recorded as advisory whole-run wall rows — the E25 overhead
        #   evidence.  Both runs' counters are cross-checked against the
        #   serial run above: the plane must stay unobservable in the
        #   deterministic half.
        pr8 = run_suite_runner(args.build_dir, args.quick, jobs=1,
                               extra_args=["--filter", "obs.fleet",
                                           "--suite", "pr8-observability"])
        worker = os.path.join(args.build_dir, "examples", "sweep_worker")
        if not os.path.exists(worker):
            sys.exit(f"error: {worker} not found — build the Release tree first")
        # Advisory wall rows need the same noise discipline as every other
        # wall sample: >= 3 repetitions per label, so bench_compare's
        # min-over-reps has something to minimize over.
        E25_REPS = 3
        for label, extra in (("plane_on", []), ("plane_off", ["--no-fleet-obs"])):
            walls = []
            for _ in range(E25_REPS):
                with tempfile.TemporaryDirectory(prefix="speedscale_fleet_") as fleet_dir:
                    t0 = time.monotonic()
                    run = run_suite_runner(
                        args.build_dir, args.quick, jobs=1,
                        extra_args=PINNED_EXCLUDES +
                                   ["--fleet", "2",
                                    "--fleet-dir", os.path.join(fleet_dir, "work"),
                                    "--worker", worker,
                                    "--suite", f"pr8-{label}"] + extra)
                    walls.append((time.monotonic() - t0) * 1e9)
                for name, entry in run["entries"].items():
                    if entry["counters"] != serial_counters.get(name):
                        sys.exit(f"error: {name}: fleet ({label}) counters diverge from "
                                 f"the serial run — the observability plane leaked into "
                                 f"the deterministic half")
            pr8["entries"][f"fleet.e25_{label}"] = {
                "counters": {}, "repetitions": len(walls), "source": "fleet_run",
                "wall_ns": walls}
        write_ledger(args.pr8_out, pr8)

    if args.pr9_out:
        # Perf-history observatory (ISSUE 9): the obs.history_* pinned
        # benches pin the speedscale.history/1 wire format (byte tallies,
        # strict/lenient load accounting, sentinel verdict counts) and the
        # supervisor.plan_* benches pin the LPT planner (items moved,
        # makespans in milli-units) — all under the hard counter gate.
        pr9 = run_suite_runner(args.build_dir, args.quick, jobs=1,
                               extra_args=["--filter", "obs.history",
                                           "--filter", "supervisor.plan",
                                           "--suite", "pr9-history"])
        write_ledger(args.pr9_out, pr9)

    if args.pr10_out:
        # Streaming engine (ISSUE 10 / E27).  Two halves:
        #
        # * the engine.stream pinned suite entries (100k online-only, 20k
        #   ring on two machines) through the regular runner — the engine's
        #   batched engine.stream.* tallies under the hard counter gate;
        # * the 10M-job run through bench/bench_engine_stream, which asserts
        #   the RSS plateau *in-process* (a breach is a nonzero exit, i.e. a
        #   failed suite run, not a ledger diff: RSS is machine-dependent and
        #   must stay out of the byte-stable counter half).  Its job/arena/
        #   recorder tallies are deterministic at any scale, so the merged
        #   engine.stream/10M entry still counter-gates against the baseline.
        pr10 = run_suite_runner(args.build_dir, args.quick, jobs=1,
                                extra_args=["--filter", "engine.stream",
                                            "--suite", "pr10-stream"])
        harness = os.path.join(args.build_dir, "bench", "bench_engine_stream")
        if not os.path.exists(harness):
            sys.exit(f"error: {harness} not found — build the Release tree first")
        with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
            tmp_path = tmp.name
        try:
            cmd = [harness, "--jobs", str(args.stream_jobs),
                   "--reps", "1" if args.quick else "2",
                   "--rss-ceiling-mb", "512", "--json", tmp_path]
            print("+", " ".join(cmd), flush=True)
            subprocess.run(cmd, check=True)
            with open(tmp_path) as f:
                stream = json.load(f)
        finally:
            os.unlink(tmp_path)
        if stream.get("schema") != SCHEMA:
            sys.exit(f"error: {harness} emitted schema {stream.get('schema')!r}, "
                     f"expected {SCHEMA!r}")
        for name, entry in stream["entries"].items():
            pr10["entries"][name] = entry
        write_ledger(args.pr10_out, pr10)


if __name__ == "__main__":
    main()
