#!/usr/bin/env python3
"""Chaos smoke for the multi-process sweep fleet (docs/robustness.md).

Runs the pinned bench suite twice:

1. serially (--jobs 1) — the reference execution;
2. as a supervised worker fleet (--fleet N), while this script SIGKILLs
   random live workers mid-sweep, reading their pids from the supervisor's
   atomically-written fleet state file.

Then asserts the crash-tolerance contract:

* the fleet run exits 0 — the supervisor restarted every murdered worker
  from its shard-log checkpoint (or finished the shard in-process on the
  degradation ladder) and the run completed;
* the deterministic half of the fleet ledger — every entry's work-counter
  snapshot — is identical to the serial ledger's, i.e. the kills are
  unobservable in the merged artifact;
* the supervisor's own accounting saw the chaos: the supervisor.restarts
  gauge in the post-run registry snapshot (--metrics-out) is >= the number
  of kills that landed;
* the fleet observability plane (PR 8) told the same story *live and after
  the fact*: mid-run /metrics scrapes (the runner serves a TelemetryServer
  via --serve-metrics) show fleet.restarts_total >= kills and per-shard
  fleet.shard.<S>.items_done strictly monotone across scrapes; the merged
  Perfetto trace renders >= 2 process tracks (incarnations) for a killed
  shard; and fleet_state.json embeds a per-item cost ledger row for every
  item, tagged with the committing (shard, incarnation);
* cost-model shard balancing (PR 9) is unobservable too: the chaos run's
  cost ledger is ingested into a speedscale.history/1 trajectory
  (perf_report --ingest), a third fleet run balances its shards with
  --balance over that history, and its merged counters must STILL be
  identical to the serial run's — plan-time balancing moves items between
  shards, never into the artifacts — with the plan recorded in
  fleet_state.json.

Exit 0 on success, 1 with a diagnostic on any violation.

    scripts/chaos_sweep.py build [--fleet 3] [--kills 2] [--reps 40]
"""
import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request


def read_worker_pids(state_path):
    """Live worker pids from the supervisor's fleet state (atomic writes, so
    the file is always whole; it may just not exist yet)."""
    try:
        with open(state_path) as f:
            state = json.load(f)
    except (OSError, json.JSONDecodeError):
        return []
    return [w["pid"] for w in state.get("workers", [])
            if w.get("state") == "running" and w.get("pid", -1) > 0]


def scrape_metrics(port_file, samples):
    """One /metrics scrape into `samples` (name -> [values in scrape order]).

    Prometheus 0.0.4 text: "speedscale_fleet_restarts_total 2".  A scrape
    that races the server's startup or shutdown is simply skipped — the
    assertions below only need *some* mid-run samples, not every poll.
    """
    try:
        with open(port_file) as f:
            address = f.read().strip()
        if not address:
            return False
        with urllib.request.urlopen(f"http://{address}/metrics", timeout=2) as r:
            body = r.read().decode()
    except (OSError, ValueError):
        return False
    for line in body.splitlines():
        if line.startswith("#") or " " not in line:
            continue
        name, _, value = line.rpartition(" ")
        try:
            samples.setdefault(name, []).append(float(value))
        except ValueError:
            continue
    return True


def run_serial(runner, out_path, reps):
    cmd = [runner, "--out", out_path, "--reps", str(reps),
           "--exclude", "analysis.sweep_suite", "--exclude", "live."]
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def run_fleet_with_kills(runner, worker, out_path, reps, fleet, kills, workdir, rng):
    state_path = os.path.join(workdir, "fleet_state.json")
    metrics_path = os.path.join(workdir, "metrics.json")
    port_file = os.path.join(workdir, "metrics.port")
    cmd = [runner, "--out", out_path, "--reps", str(reps),
           "--exclude", "analysis.sweep_suite", "--exclude", "live.",
           "--fleet", str(fleet), "--fleet-dir", os.path.join(workdir, "fw"),
           "--worker", worker, "--state-file", state_path,
           "--metrics-out", metrics_path,
           "--run-id", "chaos",
           "--serve-metrics", "127.0.0.1:0", "--port-file", port_file]
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL)
    killed = 0
    murdered = set()  # never re-kill a zombie: SIGKILL to one "succeeds" silently
    samples = {}  # live /metrics scrapes, name -> values in scrape order
    scrapes = 0
    try:
        while proc.poll() is None and killed < kills:
            pids = [p for p in read_worker_pids(state_path) if p not in murdered]
            if pids:
                victim = rng.choice(pids)
                try:
                    os.kill(victim, signal.SIGKILL)
                except ProcessLookupError:
                    murdered.add(victim)
                    continue  # raced a natural exit; pick again
                murdered.add(victim)
                killed += 1
                print(f"chaos: SIGKILLed worker pid {victim} ({killed}/{kills})",
                      flush=True)
                time.sleep(0.1)  # let the supervisor reap + respawn a new victim
            else:
                time.sleep(0.01)
            scrapes += scrape_metrics(port_file, samples)
        # Keep scraping until the run ends so the samples see the last
        # restart's gauge publish, not just the chaos window.
        while proc.poll() is None:
            scrapes += scrape_metrics(port_file, samples)
            time.sleep(0.05)
        returncode = proc.wait(timeout=600)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if returncode != 0:
        sys.exit(f"FAIL: fleet run exited {returncode} — the supervisor did not "
                 f"survive the chaos")
    if killed == 0:
        sys.exit("FAIL: the fleet finished before any kill landed — grow the "
                 "workload (--reps) so the chaos window exists")
    return killed, metrics_path, samples, scrapes


def run_fleet_balanced(runner, worker, perf_report, out_path, reps, fleet, workdir,
                       prior_state):
    """Re-runs the fleet with cost-model balancing fit from the chaos run's
    measured per-item costs; returns the balanced run's state-file path."""
    history = os.path.join(workdir, "history.jsonl")
    cmd = [perf_report, "--store", history, "--ingest", prior_state]
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    state_path = os.path.join(workdir, "balanced_state.json")
    cmd = [runner, "--out", out_path, "--reps", str(reps),
           "--exclude", "analysis.sweep_suite", "--exclude", "live.",
           "--fleet", str(fleet), "--fleet-dir", os.path.join(workdir, "fw_bal"),
           "--worker", worker, "--state-file", state_path,
           "--balance", history, "--run-id", "chaos-balanced"]
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)
    return state_path


def check_plan(state_path):
    with open(state_path) as f:
        state = json.load(f)
    plan = state.get("plan")
    if not plan or plan.get("source") != "cost_model":
        sys.exit("FAIL: balanced run's fleet_state.json records no cost_model plan")
    print(f"ok: cost-model plan recorded (items_per_shard="
          f"{plan.get('items_per_shard')}, moved_items={plan.get('moved_items')})")


def compare_ledgers(serial_path, fleet_path):
    with open(serial_path) as f:
        serial = json.load(f)
    with open(fleet_path) as f:
        fleet = json.load(f)
    if set(serial["entries"]) != set(fleet["entries"]):
        sys.exit(f"FAIL: entry sets differ: serial={sorted(serial['entries'])} "
                 f"fleet={sorted(fleet['entries'])}")
    bad = [name for name in serial["entries"]
           if serial["entries"][name]["counters"] != fleet["entries"][name]["counters"]]
    if bad:
        for name in bad:
            print(f"FAIL: {name}: counters diverged under chaos", file=sys.stderr)
            print(f"  serial: {serial['entries'][name]['counters']}", file=sys.stderr)
            print(f"  fleet : {fleet['entries'][name]['counters']}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {len(serial['entries'])} entries, counter-identical under chaos")


def check_restarts(metrics_path, killed):
    with open(metrics_path) as f:
        snapshot = json.load(f)
    restarts = snapshot.get("gauges", {}).get("supervisor.restarts")
    if restarts is None:
        sys.exit("FAIL: supervisor.restarts gauge missing from the registry snapshot")
    if restarts < killed:
        sys.exit(f"FAIL: supervisor.restarts={restarts} < kills landed={killed}")
    print(f"ok: supervisor.restarts={restarts:g} >= {killed} kills")


def check_live_scrape(samples, scrapes, killed):
    if scrapes == 0:
        sys.exit("FAIL: no mid-run /metrics scrape succeeded — the telemetry "
                 "server never came up inside the chaos window")
    restarts = samples.get("speedscale_fleet_restarts_total", [])
    if not restarts or max(restarts) < killed:
        peak = max(restarts) if restarts else "absent"
        sys.exit(f"FAIL: live fleet.restarts_total peaked at {peak} "
                 f"< kills landed={killed}")
    shard_series = {name: vals for name, vals in samples.items()
                    if name.startswith("speedscale_fleet_shard_")
                    and name.endswith("_items_done")}
    if not shard_series:
        sys.exit("FAIL: no fleet.shard.<S>.items_done gauges in the live scrapes")
    for name, vals in sorted(shard_series.items()):
        if any(b < a for a, b in zip(vals, vals[1:])):
            sys.exit(f"FAIL: {name} went backwards across scrapes: {vals}")
    print(f"ok: {scrapes} live scrapes; fleet.restarts_total peaked at "
          f"{max(restarts):g} >= {killed} kills; "
          f"{len(shard_series)} per-shard progress gauges monotone")


def check_fleet_plane(state_path, fw_dir, killed):
    """Post-run artifacts of the observability plane: the cost ledger is
    attributed per (shard, incarnation), and a killed shard's crash-recovery
    renders as multiple incarnation tracks in the merged trace."""
    with open(state_path) as f:
        state = json.load(f)
    rows = state.get("cost", {}).get("rows", [])
    if not rows:
        sys.exit("FAIL: fleet_state.json carries no per-item cost ledger rows")
    bad = [r for r in rows if "shard" not in r or "incarnation" not in r]
    if bad:
        sys.exit(f"FAIL: {len(bad)} cost rows lack (shard, incarnation) attribution")
    restarted = [w for w in state.get("workers", []) if w.get("restarts", 0) > 0]
    if not restarted:
        sys.exit(f"FAIL: no worker shows restarts > 0 in fleet_state.json "
                 f"after {killed} kills")
    with open(os.path.join(fw_dir, "fleet_trace.json")) as f:
        trace = f.read()
    # At least one killed shard must render its whole recovery: a track for
    # the murdered incarnation and one for its replacement.  (Not *every*
    # one: a SIGKILL can land before the victim journals its first event.)
    multi_track = [
        w for w in restarted
        if sum(1 for inc in range(w["restarts"] + 1)
               if f'"worker shard {w["shard"]} inc {inc}"' in trace) >= 2
    ]
    if not multi_track:
        sys.exit("FAIL: no killed shard renders >= 2 incarnation tracks in "
                 "the merged fleet trace")
    with open(os.path.join(fw_dir, "fleet_log.jsonl")) as f:
        header = f.readline().strip()
    if header != '{"schema":"speedscale.log/1"}':
        sys.exit(f"FAIL: merged fleet log header is {header!r}")
    print(f"ok: cost ledger has {len(rows)} attributed rows; "
          f"{len(multi_track)}/{len(restarted)} killed shard(s) render >= 2 "
          f"incarnation tracks; merged log intact")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("build_dir", help="CMake build tree (Release)")
    ap.add_argument("--fleet", type=int, default=3, help="worker processes")
    ap.add_argument("--kills", type=int, default=2, help="workers to SIGKILL")
    ap.add_argument("--reps", type=int, default=40,
                    help="runner repetitions — sized so the fleet runs long "
                         "enough for every kill to land (the suite is ~25 ms "
                         "per repetition serially)")
    ap.add_argument("--seed", type=int, default=0, help="victim-choice seed")
    args = ap.parse_args()

    runner = os.path.join(args.build_dir, "bench", "bench_suite_runner")
    worker = os.path.join(args.build_dir, "examples", "sweep_worker")
    perf_report = os.path.join(args.build_dir, "examples", "perf_report")
    for path in (runner, worker, perf_report):
        if not os.path.exists(path):
            sys.exit(f"error: {path} not found — build the tree first")

    rng = random.Random(args.seed)
    with tempfile.TemporaryDirectory(prefix="speedscale_chaos_") as workdir:
        serial_path = os.path.join(workdir, "serial.json")
        fleet_path = os.path.join(workdir, "fleet.json")
        run_serial(runner, serial_path, args.reps)
        killed, metrics_path, samples, scrapes = run_fleet_with_kills(
            runner, worker, fleet_path, args.reps, args.fleet, args.kills,
            workdir, rng)
        compare_ledgers(serial_path, fleet_path)
        check_restarts(metrics_path, killed)
        check_live_scrape(samples, scrapes, killed)
        check_fleet_plane(os.path.join(workdir, "fleet_state.json"),
                          os.path.join(workdir, "fw"), killed)
        # Phase 3 (PR 9): balance the shards from the chaos run's measured
        # costs and prove the plan is unobservable in the merged artifacts.
        balanced_path = os.path.join(workdir, "balanced.json")
        balanced_state = run_fleet_balanced(
            runner, worker, perf_report, balanced_path, args.reps, args.fleet,
            workdir, os.path.join(workdir, "fleet_state.json"))
        compare_ledgers(serial_path, balanced_path)
        check_plan(balanced_state)
    print("chaos smoke passed")


if __name__ == "__main__":
    main()
