#!/usr/bin/env python3
"""Chaos smoke for the multi-process sweep fleet (docs/robustness.md).

Runs the pinned bench suite twice:

1. serially (--jobs 1) — the reference execution;
2. as a supervised worker fleet (--fleet N), while this script SIGKILLs
   random live workers mid-sweep, reading their pids from the supervisor's
   atomically-written fleet state file.

Then asserts the crash-tolerance contract:

* the fleet run exits 0 — the supervisor restarted every murdered worker
  from its shard-log checkpoint (or finished the shard in-process on the
  degradation ladder) and the run completed;
* the deterministic half of the fleet ledger — every entry's work-counter
  snapshot — is identical to the serial ledger's, i.e. the kills are
  unobservable in the merged artifact;
* the supervisor's own accounting saw the chaos: the supervisor.restarts
  gauge in the post-run registry snapshot (--metrics-out) is >= the number
  of kills that landed.

Exit 0 on success, 1 with a diagnostic on any violation.

    scripts/chaos_sweep.py build [--fleet 3] [--kills 2] [--reps 40]
"""
import argparse
import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time


def read_worker_pids(state_path):
    """Live worker pids from the supervisor's fleet state (atomic writes, so
    the file is always whole; it may just not exist yet)."""
    try:
        with open(state_path) as f:
            state = json.load(f)
    except (OSError, json.JSONDecodeError):
        return []
    return [w["pid"] for w in state.get("workers", [])
            if w.get("state") == "running" and w.get("pid", -1) > 0]


def run_serial(runner, out_path, reps):
    cmd = [runner, "--out", out_path, "--reps", str(reps),
           "--exclude", "analysis.sweep_suite", "--exclude", "live."]
    print("+", " ".join(cmd), flush=True)
    subprocess.run(cmd, check=True, stdout=subprocess.DEVNULL)


def run_fleet_with_kills(runner, worker, out_path, reps, fleet, kills, workdir, rng):
    state_path = os.path.join(workdir, "fleet_state.json")
    metrics_path = os.path.join(workdir, "metrics.json")
    cmd = [runner, "--out", out_path, "--reps", str(reps),
           "--exclude", "analysis.sweep_suite", "--exclude", "live.",
           "--fleet", str(fleet), "--fleet-dir", os.path.join(workdir, "fw"),
           "--worker", worker, "--state-file", state_path,
           "--metrics-out", metrics_path]
    print("+", " ".join(cmd), flush=True)
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL)
    killed = 0
    murdered = set()  # never re-kill a zombie: SIGKILL to one "succeeds" silently
    try:
        while proc.poll() is None and killed < kills:
            pids = [p for p in read_worker_pids(state_path) if p not in murdered]
            if pids:
                victim = rng.choice(pids)
                try:
                    os.kill(victim, signal.SIGKILL)
                except ProcessLookupError:
                    murdered.add(victim)
                    continue  # raced a natural exit; pick again
                murdered.add(victim)
                killed += 1
                print(f"chaos: SIGKILLed worker pid {victim} ({killed}/{kills})",
                      flush=True)
                time.sleep(0.1)  # let the supervisor reap + respawn a new victim
            else:
                time.sleep(0.01)
        returncode = proc.wait(timeout=600)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
    if returncode != 0:
        sys.exit(f"FAIL: fleet run exited {returncode} — the supervisor did not "
                 f"survive the chaos")
    if killed == 0:
        sys.exit("FAIL: the fleet finished before any kill landed — grow the "
                 "workload (--reps) so the chaos window exists")
    return killed, metrics_path


def compare_ledgers(serial_path, fleet_path):
    with open(serial_path) as f:
        serial = json.load(f)
    with open(fleet_path) as f:
        fleet = json.load(f)
    if set(serial["entries"]) != set(fleet["entries"]):
        sys.exit(f"FAIL: entry sets differ: serial={sorted(serial['entries'])} "
                 f"fleet={sorted(fleet['entries'])}")
    bad = [name for name in serial["entries"]
           if serial["entries"][name]["counters"] != fleet["entries"][name]["counters"]]
    if bad:
        for name in bad:
            print(f"FAIL: {name}: counters diverged under chaos", file=sys.stderr)
            print(f"  serial: {serial['entries'][name]['counters']}", file=sys.stderr)
            print(f"  fleet : {fleet['entries'][name]['counters']}", file=sys.stderr)
        sys.exit(1)
    print(f"ok: {len(serial['entries'])} entries, counter-identical under chaos")


def check_restarts(metrics_path, killed):
    with open(metrics_path) as f:
        snapshot = json.load(f)
    restarts = snapshot.get("gauges", {}).get("supervisor.restarts")
    if restarts is None:
        sys.exit("FAIL: supervisor.restarts gauge missing from the registry snapshot")
    if restarts < killed:
        sys.exit(f"FAIL: supervisor.restarts={restarts} < kills landed={killed}")
    print(f"ok: supervisor.restarts={restarts:g} >= {killed} kills")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("build_dir", help="CMake build tree (Release)")
    ap.add_argument("--fleet", type=int, default=3, help="worker processes")
    ap.add_argument("--kills", type=int, default=2, help="workers to SIGKILL")
    ap.add_argument("--reps", type=int, default=40,
                    help="runner repetitions — sized so the fleet runs long "
                         "enough for every kill to land (the suite is ~25 ms "
                         "per repetition serially)")
    ap.add_argument("--seed", type=int, default=0, help="victim-choice seed")
    args = ap.parse_args()

    runner = os.path.join(args.build_dir, "bench", "bench_suite_runner")
    worker = os.path.join(args.build_dir, "examples", "sweep_worker")
    for path in (runner, worker):
        if not os.path.exists(path):
            sys.exit(f"error: {path} not found — build the tree first")

    rng = random.Random(args.seed)
    with tempfile.TemporaryDirectory(prefix="speedscale_chaos_") as workdir:
        serial_path = os.path.join(workdir, "serial.json")
        fleet_path = os.path.join(workdir, "fleet.json")
        run_serial(runner, serial_path, args.reps)
        killed, metrics_path = run_fleet_with_kills(
            runner, worker, fleet_path, args.reps, args.fleet, args.kills,
            workdir, rng)
        compare_ledgers(serial_path, fleet_path)
        check_restarts(metrics_path, killed)
    print("chaos smoke passed")


if __name__ == "__main__":
    main()
