"""Shared input-validation helpers for the plotting scripts.

Everything here is about failing with a useful diagnostic *before* matplotlib
enters the picture: a truncated JSONL line, a missing column, or a numeric
field that is not a number should name the file, the line, and what the
script expected — even on machines where matplotlib is not installed.
"""
import json
import sys


def die(msg):
    sys.exit(f"error: {msg}")


def iter_jsonl(path, hint):
    """Yields (lineno, record) for each non-empty line of a JSONL file.

    Exits with a file:line diagnostic (mentioning `hint`, e.g. the trace_tool
    flag that produces the expected format) on unreadable files or lines that
    are not valid JSON objects.
    """
    try:
        f = open(path)
    except OSError as e:
        die(f"cannot read {path}: {e.strerror}")
    with f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                die(f"{path}:{lineno}: not valid JSONL ({e.msg}) ({hint})")
            if not isinstance(rec, dict):
                die(f"{path}:{lineno}: expected a JSON object ({hint})")
            yield lineno, rec


def number(rec, key, path, lineno):
    """Fetches a numeric field; json_util writes non-finite doubles as the
    quoted strings "inf"/"-inf"/"nan", which float() accepts."""
    v = rec.get(key)
    if isinstance(v, bool) or v is None:
        die(f"{path}:{lineno}: field '{key}' is not a number")
    if isinstance(v, (int, float)):
        return float(v)
    if isinstance(v, str):
        try:
            return float(v)
        except ValueError:
            pass
    die(f"{path}:{lineno}: field '{key}' is not a number")


def require_matplotlib():
    """Imports matplotlib (Agg backend) or exits with the standard hint."""
    try:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

        return plt
    except ImportError:
        sys.exit("error: matplotlib is not installed — this script only renders plots;\n"
                 "the C++ build, tests, and benches do not need it.  Install it\n"
                 "(e.g. pip install matplotlib) or plot the CSV/JSONL another way.")
