#!/usr/bin/env python3
"""CI smoke test for the live telemetry plane (src/obs/live/).

Launches `datacenter_cluster --serve-metrics` in the background, waits for
the atomically-written port file, scrapes /metrics twice, and asserts:

  * the exposition parses as Prometheus 0.0.4 text (every sample line has a
    finite-or-token value, every metric has a preceding # TYPE line);
  * `speedscale_build_info{...} 1` is present with a non-empty git_hash;
  * counters are monotone non-decreasing between the two scrapes, and the
    simulated cluster actually progressed (speedscale_cluster_rounds grew);
  * /snapshot.json parses as JSON and carries build_info;
  * /healthz answers ok;
  * SIGTERM produces a clean shutdown (exit code 0).

Usage: telemetry_smoke.py /path/to/datacenter_cluster

Exit codes: 0 pass, 1 assertion failure, 2 usage/spawn failure.
"""

import json
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

SCRAPE_TIMEOUT = 10.0
PROM_TOKENS = {"+Inf", "-Inf", "NaN"}


def fail(msg):
    print(f"telemetry_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def scrape(address, path):
    """Minimal HTTP/1.0 GET against HOST:PORT or unix:PATH."""
    deadline = time.monotonic() + SCRAPE_TIMEOUT
    if address.startswith("unix:"):
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(SCRAPE_TIMEOUT)
        sock.connect(address[len("unix:"):])
    else:
        host, port = address.rsplit(":", 1)
        sock = socket.create_connection((host, int(port)), timeout=SCRAPE_TIMEOUT)
    with sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        chunks = []
        while time.monotonic() < deadline:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    response = b"".join(chunks).decode()
    head, sep, body = response.partition("\r\n\r\n")
    if not sep or " 200 " not in head.splitlines()[0]:
        fail(f"scrape {path}: bad response head {head.splitlines()[:1]}")
    return body


def parse_exposition(text):
    """Validate 0.0.4 text syntax; return {metric_name: value} for samples."""
    samples = {}
    typed = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            fail(f"exposition line {lineno}: empty line")
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                fail(f"exposition line {lineno}: bad TYPE line {line!r}")
            typed.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        name_part, _, value_part = line.rpartition(" ")
        if not name_part:
            fail(f"exposition line {lineno}: no value separator in {line!r}")
        if value_part not in PROM_TOKENS:
            try:
                float(value_part)
            except ValueError:
                fail(f"exposition line {lineno}: bad value {value_part!r}")
        name = name_part.split("{", 1)[0]
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if base.endswith(suffix) and base[: -len(suffix)] in typed:
                base = base[: -len(suffix)]
                break
        if base not in typed:
            fail(f"exposition line {lineno}: sample {name!r} has no # TYPE line")
        if not name.startswith("speedscale_"):
            fail(f"exposition line {lineno}: {name!r} missing speedscale_ prefix")
        samples[name_part] = value_part
    if not samples:
        fail("exposition has no samples")
    return samples


def counters_of(text):
    """{name: float} for every metric declared `# TYPE ... counter`."""
    counter_names = set()
    for line in text.splitlines():
        if line.startswith("# TYPE ") and line.endswith(" counter"):
            counter_names.add(line.split()[2])
    out = {}
    for name_part, value in parse_exposition(text).items():
        base = name_part.split("{", 1)[0]
        if base in counter_names and value not in PROM_TOKENS:
            out[name_part] = float(value)
    return out


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    binary = sys.argv[1]
    if not os.access(binary, os.X_OK):
        print(f"telemetry_smoke: not executable: {binary}", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory(prefix="telemetry_smoke_") as tmp:
        port_file = os.path.join(tmp, "address")
        jsonl = os.path.join(tmp, "telemetry.jsonl")
        proc = subprocess.Popen(
            [binary, "--serve-metrics", "0", "--port-file", port_file,
             "--rounds", "0", "--period-ms", "50", "--round-sleep-ms", "20",
             "--telemetry-jsonl", jsonl],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        try:
            deadline = time.monotonic() + SCRAPE_TIMEOUT
            while not os.path.exists(port_file):
                if proc.poll() is not None:
                    fail(f"server exited early: {proc.communicate()[0]}")
                if time.monotonic() > deadline:
                    fail("port file never appeared")
                time.sleep(0.05)
            address = open(port_file).read().strip()
            print(f"telemetry_smoke: serving at {address}")

            if scrape(address, "/healthz").strip() != "ok":
                fail("/healthz did not answer ok")

            first = scrape(address, "/metrics")
            parse_exposition(first)
            if 'git_hash="' not in first or "speedscale_build_info{" not in first:
                fail("exposition missing speedscale_build_info with git_hash")

            snapshot = json.loads(scrape(address, "/snapshot.json"))
            for key in ("build_info", "counters", "gauges"):
                if key not in snapshot:
                    fail(f"/snapshot.json missing {key!r}")
            if not snapshot["build_info"].get("git_hash"):
                fail("/snapshot.json build_info.git_hash empty")

            time.sleep(0.5)  # let a few rounds land
            second = scrape(address, "/metrics")
            parse_exposition(second)

            before, after = counters_of(first), counters_of(second)
            for name, value in before.items():
                if name in after and after[name] < value:
                    fail(f"counter {name} went backwards: {value} -> {after[name]}")
            rounds = "speedscale_cluster_rounds"
            if after.get(rounds, 0.0) <= before.get(rounds, 0.0):
                fail(f"{rounds} did not advance ({before.get(rounds)} -> {after.get(rounds)})")
            print(f"telemetry_smoke: {len(after)} counters monotone, "
                  f"{rounds} {before.get(rounds):.0f} -> {after.get(rounds):.0f}")
        finally:
            if proc.poll() is None:
                proc.send_signal(signal.SIGTERM)
            try:
                out, _ = proc.communicate(timeout=SCRAPE_TIMEOUT)
            except subprocess.TimeoutExpired:
                proc.kill()
                fail("server did not shut down on SIGTERM")

        if proc.returncode != 0:
            fail(f"server exit code {proc.returncode}, output:\n{out}")
        if "clean shutdown" not in out:
            fail(f"server never printed clean shutdown:\n{out}")
        if not os.path.exists(jsonl) or os.path.getsize(jsonl) == 0:
            fail("telemetry JSONL artifact missing or empty after shutdown")
        header = json.loads(open(jsonl).readline())
        if header.get("schema") != "speedscale.telemetry_jsonl/1":
            fail(f"bad JSONL header schema: {header.get('schema')!r}")
        print("telemetry_smoke: clean shutdown, JSONL artifact committed")
    print("telemetry_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
