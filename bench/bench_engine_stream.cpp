// E27: the streaming million-job engine under a memory ceiling.
//
// Drives src/engine/ (StreamEngine + SyntheticJobSource) at configurable
// scale and *asserts the RSS plateau in-process*: resident memory, sampled
// from /proc/self/status every --probe-every jobs through a JobSource
// decorator, must stop growing once the backlog reaches steady state.  A
// full-instance simulator is O(jobs) resident; the streaming engine's
// contract (docs/performance.md) is O(active backlog), so after warmup the
// curve is flat no matter how many more jobs stream through.
//
//   bench_engine_stream                         # smoke: 200k jobs, plateau assert
//   bench_engine_stream --jobs 10000000 \
//       --rss-ceiling-mb 512 --json out.json    # the pinned engine.stream/10M run
//
// With --json the run is emitted as a speedscale.bench_ledger/1 document:
// the engine's deterministic tallies (jobs, arena high-water/slots, recorder
// counts) as hard-gated work counters, wall time per repetition as the
// advisory half, and the measured RSS waypoints in the (ungated) config
// block.  scripts/run_bench_suite.py --pr10-out merges this into
// BENCH_PR10.json next to the pinned engine.stream/* suite entries.
//
// Exit status: 0 ok, 1 plateau/ceiling breach or nondeterministic counters,
// 2 usage.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include <chrono>

#include "src/engine/job_source.h"
#include "src/engine/stream_engine.h"
#include "src/obs/perf/bench_ledger.h"

using namespace speedscale;

namespace {

/// VmRSS in kB from /proc/self/status; 0 when unavailable (non-procfs
/// platforms), which downgrades the plateau assertion to a warning.
long read_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmRSS:", 0) == 0) {
      return std::strtol(line.c_str() + 6, nullptr, 10);
    }
  }
  return 0;
}

/// JobSource decorator that samples RSS every `probe_every` jobs pulled.
/// The engine consumes its source internally, so the decorator is the only
/// place a probe can ride along without touching engine code.  It records
/// the first sample at/after `warmup_jobs` (the backlog's steady-state
/// baseline) and the running max after that point.
class RssProbeSource : public engine::JobSource {
 public:
  RssProbeSource(engine::JobSource& inner, std::uint64_t probe_every,
                 std::uint64_t warmup_jobs)
      : inner_(inner), probe_every_(probe_every), warmup_jobs_(warmup_jobs) {}

  bool next(Job* out) override {
    const bool more = inner_.next(out);
    if (more && ++pulled_ % probe_every_ == 0) sample();
    return more;
  }

  /// One explicit post-run sample (the engine drains the backlog after the
  /// source is exhausted, so the final reading happens outside next()).
  void final_sample() { sample(); }

  [[nodiscard]] long warmup_kb() const { return warmup_kb_; }
  [[nodiscard]] long max_after_warmup_kb() const { return max_after_warmup_kb_; }
  [[nodiscard]] long final_kb() const { return final_kb_; }
  [[nodiscard]] std::uint64_t samples() const { return samples_; }

 private:
  void sample() {
    const long kb = read_rss_kb();
    if (kb <= 0) return;
    ++samples_;
    final_kb_ = kb;
    if (pulled_ >= warmup_jobs_) {
      if (warmup_kb_ == 0) warmup_kb_ = kb;
      if (kb > max_after_warmup_kb_) max_after_warmup_kb_ = kb;
    }
  }

  engine::JobSource& inner_;
  std::uint64_t probe_every_;
  std::uint64_t warmup_jobs_;
  std::uint64_t pulled_ = 0;
  std::uint64_t samples_ = 0;
  long warmup_kb_ = 0;
  long max_after_warmup_kb_ = 0;
  long final_kb_ = 0;
};

/// "10M" / "200k" / "1234" — the suffix convention of the pinned suite.
std::string scale_label(std::uint64_t jobs) {
  char buf[32];
  if (jobs >= 1'000'000 && jobs % 1'000'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lluM", static_cast<unsigned long long>(jobs / 1'000'000));
  } else if (jobs >= 1'000 && jobs % 1'000 == 0) {
    std::snprintf(buf, sizeof buf, "%lluk", static_cast<unsigned long long>(jobs / 1'000));
  } else {
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(jobs));
  }
  return buf;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_engine_stream [--jobs N] [--machines K] [--reps R]\n"
               "                           [--record off|ring] [--ring-capacity N]\n"
               "                           [--rss-ceiling-mb M] [--rss-slack-mb M]\n"
               "                           [--probe-every N] [--json FILE] [--name NAME]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t jobs = 200'000;
  int machines = 1, reps = 1;
  engine::RecordMode mode = engine::RecordMode::kOff;
  std::size_t ring_capacity = 1 << 16;
  long ceiling_mb = 0, slack_mb = 64;
  std::uint64_t probe_every = 1 << 14;
  std::string json_path, name;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      jobs = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--machines" && i + 1 < argc) {
      machines = std::atoi(argv[++i]);
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--record" && i + 1 < argc) {
      const std::string m = argv[++i];
      if (m == "off") {
        mode = engine::RecordMode::kOff;
      } else if (m == "ring") {
        mode = engine::RecordMode::kRing;
      } else {
        return usage();
      }
    } else if (arg == "--ring-capacity" && i + 1 < argc) {
      ring_capacity = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--rss-ceiling-mb" && i + 1 < argc) {
      ceiling_mb = std::atol(argv[++i]);
    } else if (arg == "--rss-slack-mb" && i + 1 < argc) {
      slack_mb = std::atol(argv[++i]);
    } else if (arg == "--probe-every" && i + 1 < argc) {
      probe_every = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--name" && i + 1 < argc) {
      name = argv[++i];
    } else {
      return usage();
    }
  }
  if (jobs == 0 || machines < 1 || reps < 1 || probe_every == 0) return usage();
  if (name.empty()) name = "engine.stream/" + scale_label(jobs);
  // Steady state arrives well before 1/8 of the stream at the pinned load;
  // cap the warmup window so tiny --jobs runs still get a post-warmup phase.
  const std::uint64_t warmup_jobs = jobs / 8;

  obs::perf::BenchLedger ledger("pr10-stream");
  ledger.set_config("alpha", "2");
  ledger.set_config("jobs", std::to_string(jobs));
  ledger.set_config("machines", std::to_string(machines));
  ledger.set_config("record", mode == engine::RecordMode::kOff ? "off" : "ring");
  obs::perf::BenchEntry& entry = ledger.entry(name);
  entry.source = "runner";
  entry.repetitions = reps;

  long warmup_kb = 0, max_kb = 0, final_kb = 0;
  for (int rep = 0; rep < reps; ++rep) {
    engine::SyntheticJobSource::Params params;
    params.n_jobs = jobs;
    params.seed = 21;  // the pinned engine.stream seed (src/analysis/pinned_suite.cpp)
    engine::SyntheticJobSource source(params);
    RssProbeSource probed(source, probe_every, warmup_jobs);

    engine::StreamOptions options;
    options.alpha = 2.0;
    options.machines = machines;
    options.recorder.mode = mode;
    options.recorder.ring_capacity = ring_capacity;
    engine::StreamEngine eng(options);

    const auto t0 = std::chrono::steady_clock::now();
    const engine::StreamResult res = eng.run(probed);
    const auto t1 = std::chrono::steady_clock::now();
    probed.final_sample();
    entry.wall_ns.push_back(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count()));

    std::map<std::string, std::int64_t> counters;
    counters["engine.stream.jobs"] = static_cast<std::int64_t>(res.jobs);
    counters["engine.stream.arena_high_water"] =
        static_cast<std::int64_t>(res.arena_high_water);
    counters["engine.stream.arena_slots"] = static_cast<std::int64_t>(res.arena_capacity);
    if (mode != engine::RecordMode::kOff) {
      counters["engine.stream.segments_recorded"] =
          static_cast<std::int64_t>(res.segments_recorded);
      counters["engine.stream.segments_dropped"] =
          static_cast<std::int64_t>(res.segments_dropped);
    }
    if (rep == 0) {
      entry.counters = std::move(counters);
    } else if (counters != entry.counters) {
      std::fprintf(stderr,
                   "FATAL: %s: work counters differ between repetition 0 and %d — "
                   "the streaming run is not deterministic\n",
                   name.c_str(), rep);
      return 1;
    }

    warmup_kb = probed.warmup_kb();
    max_kb = probed.max_after_warmup_kb();
    final_kb = probed.final_kb();
    std::printf(
        "%-20s rep=%d  jobs=%llu  makespan=%.3f  energy=%.6g  flow=%.6g  "
        "arena=%zu/%zu slots  wall=%.3f ms\n",
        name.c_str(), rep, static_cast<unsigned long long>(res.jobs), res.makespan,
        res.online.energy, res.online.fractional_flow, res.arena_high_water,
        res.arena_capacity,
        entry.wall_ns.back() * 1e-6);
    std::printf("  rss: warmup=%.1f MB  max_after_warmup=%.1f MB  final=%.1f MB  "
                "(%llu samples, every %llu jobs)\n",
                warmup_kb / 1024.0, max_kb / 1024.0, final_kb / 1024.0,
                static_cast<unsigned long long>(probed.samples()),
                static_cast<unsigned long long>(probe_every));
  }

  // The plateau assertion: once the backlog reaches steady state, resident
  // memory must not keep growing with the job count.  Slack covers allocator
  // hysteresis and the one-off geometric arena growth that can land just
  // after the warmup snapshot.
  int rc = 0;
  if (warmup_kb > 0) {
    if (max_kb > warmup_kb + slack_mb * 1024) {
      std::fprintf(stderr,
                   "FAIL: RSS grew past the plateau: warmup %.1f MB -> max %.1f MB "
                   "(slack %ld MB) — resident state is scaling with the stream\n",
                   warmup_kb / 1024.0, max_kb / 1024.0, slack_mb);
      rc = 1;
    }
  } else {
    std::fprintf(stderr, "warning: VmRSS unavailable; plateau not asserted\n");
  }
  if (ceiling_mb > 0 && max_kb > ceiling_mb * 1024) {
    std::fprintf(stderr, "FAIL: RSS %.1f MB exceeds the --rss-ceiling-mb %ld MB\n",
                 max_kb / 1024.0, ceiling_mb);
    rc = 1;
  }

  ledger.set_config("rss_final_mb", std::to_string(final_kb / 1024));
  ledger.set_config("rss_max_after_warmup_mb", std::to_string(max_kb / 1024));
  ledger.set_config("rss_warmup_mb", std::to_string(warmup_kb / 1024));
  if (!json_path.empty()) {
    ledger.write_file(json_path);
    std::printf("ledger written to %s\n", json_path.c_str());
  }
  return rc;
}
