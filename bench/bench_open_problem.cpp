// E15 (extension) — the Section 7 open problem: non-uniform densities on
// identical parallel machines.
//
// The paper conjectures the Lemma 20-style assignment equivalence between
// the natural non-clairvoyant dispatch (global rounded-HDF queue, "dispatch
// as needed") and the natural clairvoyant comparator (greedy restricted to
// equal-or-higher-density jobs) breaks: "jobs released later could affect
// the machine a job is assigned to in the non-clairvoyant algorithm whereas
// they do not in the clairvoyant algorithm."  This bench searches for and
// exhibits such divergences, and quantifies their cost.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/open_problem.h"
#include "src/algo/parallel.h"
#include "src/analysis/table.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E15 (extension) — Section 7 open problem: non-uniform density, k machines\n\n");

  std::printf("divergence search (do the two candidate policies assign identically?):\n\n");
  Table t({"alpha", "k", "jobs", "instances", "diverged", "first seed", "worst cost ratio"});
  for (double alpha : {2.0, 3.0}) {
    for (int k : {2, 3}) {
      const DivergenceReport rep = search_divergence(alpha, k, 16, 40);
      t.add_row({Table::cell(alpha), Table::cell(static_cast<long>(k)), Table::cell(16L),
                 Table::cell(static_cast<long>(rep.instances_tried)),
                 Table::cell(static_cast<long>(rep.diverged)),
                 Table::cell(static_cast<long>(rep.first_divergent_seed)),
                 Table::cell(rep.worst_cost_ratio)});
    }
  }
  t.print(std::cout);

  // Exhibit the first divergent instance in detail.
  const DivergenceReport rep = search_divergence(2.0, 2, 16, 40);
  if (rep.first_divergent_seed != 0) {
    const Instance inst = workload::generate({.n_jobs = 16,
                                              .arrival_rate = 1.5,
                                              .density_mode = workload::DensityMode::kClasses,
                                              .density_classes = 3,
                                              .density_spread = 30.0,
                                              .seed = rep.first_divergent_seed});
    const OpenProblemRun a = run_cpar_density_restricted(inst, 2.0, 2);
    const OpenProblemRun b = run_ncpar_hdf_queue(inst, 2.0, 2);
    std::printf("\nfirst divergent instance (seed %llu): per-job assignments\n\n",
                static_cast<unsigned long long>(rep.first_divergent_seed));
    Table t2({"job", "release", "density", "clairvoyant-restricted", "HDF queue", ""});
    for (const Job& j : inst.jobs()) {
      const auto i = static_cast<std::size_t>(j.id);
      t2.add_row({Table::cell(static_cast<long>(j.id)), Table::cell(j.release, 4),
                  Table::cell(j.density, 4), Table::cell(static_cast<long>(a.assignment[i])),
                  Table::cell(static_cast<long>(b.assignment[i])),
                  a.assignment[i] != b.assignment[i] ? "<-- diverges" : ""});
    }
    t2.print(std::cout);
    std::printf("\ncost (fractional objective): restricted-greedy %.4f, HDF-queue %.4f\n",
                a.metrics.fractional_objective(), b.metrics.fractional_objective());
  }

  std::printf("\nhow far are both candidates from the full clairvoyant greedy (C-PAR)?\n\n");
  Table t3({"seed", "C-PAR", "restricted greedy", "HDF queue", "restr/C-PAR", "queue/C-PAR"});
  for (std::uint64_t seed : {3ULL, 7ULL, 11ULL}) {
    const Instance inst = workload::generate({.n_jobs = 16,
                                              .arrival_rate = 1.5,
                                              .density_mode = workload::DensityMode::kClasses,
                                              .density_classes = 3,
                                              .density_spread = 30.0,
                                              .seed = seed});
    const ParallelRun cpar = run_c_par(inst, 2.0, 2);
    const OpenProblemRun a = run_cpar_density_restricted(inst, 2.0, 2);
    const OpenProblemRun b = run_ncpar_hdf_queue(inst, 2.0, 2);
    t3.add_row({Table::cell(static_cast<long>(seed)),
                Table::cell(cpar.metrics.fractional_objective()),
                Table::cell(a.metrics.fractional_objective()),
                Table::cell(b.metrics.fractional_objective()),
                Table::cell(a.metrics.fractional_objective() /
                            cpar.metrics.fractional_objective()),
                Table::cell(b.metrics.fractional_objective() /
                            cpar.metrics.fractional_objective())});
  }
  t3.print(std::cout);
  std::printf("\nExpected shape: divergences exist (the paper's conjecture), but their\n");
  std::printf("cost is a small constant factor on these workloads — consistent with the\n");
  std::printf("Section 7 intuition that density imbalance is only constant-costly.\n");
  return 0;
}
