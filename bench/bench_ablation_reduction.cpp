// E8 — Lemma 15 / Theorem 16: the frac->int reduction, swept over eps.
//
// The reduction's guarantee is max((1+eps)^alpha, 1 + 1/eps) times the
// fractional guarantee: small eps keeps energy but pays flow, large eps the
// reverse.  This bench maps the measured integral objective across eps and
// compares against the direct integral accounting of Algorithm NC (Thm 9),
// locating the empirical optimum eps.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/bounds.h"
#include "src/algo/frac_to_int.h"
#include "src/analysis/ascii_chart.h"
#include "src/analysis/table.h"
#include "src/numerics/stats.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Series;
using analysis::Table;

int main() {
  std::printf("E8 / Lemma 15 — fractional -> integral reduction across eps\n");
  std::printf("(alpha = 2, 16 uniform-density seeds, 20 jobs)\n\n");
  const double alpha = 2.0;

  Table t({"eps", "theory factor", "energy mult (meas)", "flow mult (meas)",
           "int objective / NC frac", "vs direct NC integral"});
  Series meas{"measured int/frac multiplier", {}, {}, '*'};
  Series theory{"max((1+e)^a, 1+1/e)", {}, {}, '.'};
  for (double eps : {0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0}) {
    numerics::RunningStats e_mult, f_mult, obj_mult, vs_direct;
    for (int seed = 1; seed <= 16; ++seed) {
      const Instance inst = workload::generate({.n_jobs = 20,
                                                .arrival_rate = 1.5,
                                                .seed = static_cast<std::uint64_t>(seed)});
      const RunResult nc = run_nc_uniform(inst, alpha);
      const IntReductionRun red = reduce_frac_to_int(inst, nc.schedule, eps);
      e_mult.add(red.energy / nc.metrics.energy);
      f_mult.add(red.integral_flow / nc.metrics.fractional_flow);
      obj_mult.add(red.integral_objective() / nc.metrics.fractional_objective());
      vs_direct.add(red.integral_objective() / nc.metrics.integral_objective());
    }
    t.add_row({Table::cell(eps), Table::cell(bounds::reduction_factor(alpha, eps)),
               Table::cell(e_mult.mean()), Table::cell(f_mult.mean()),
               Table::cell(obj_mult.mean()), Table::cell(vs_direct.mean())});
    meas.x.push_back(eps);
    meas.y.push_back(obj_mult.mean());
    theory.x.push_back(eps);
    theory.y.push_back(bounds::reduction_factor(alpha, eps));
  }
  t.print(std::cout);
  std::printf("\n");
  analysis::plot(std::cout, {meas, theory}, 72, 14, "reduction multiplier vs eps");
  std::printf("\nExpected shape: measured multipliers sit below the theory curve, both\n");
  std::printf("U-shaped in eps; the direct integral NC (Thm 9) beats the reduction for\n");
  std::printf("most eps — the reduction's value is its black-box generality (Thm 16).\n");
  return 0;
}
