// E16 (extension) — robustness across system load and workload shape.
//
// The paper's guarantees are worst-case; this bench maps the *typical*
// ratios of the whole algorithm zoo (clairvoyant C, the paper's NC, the
// known-weight strategies WRR/LAPS, and the guess-and-double strawman)
// against the numerical OPT as the arrival rate sweeps from idle to
// saturated, and on a diurnal day/night trace.  The interesting shape: NC's
// premium over C is the constant 1/(1-1/alpha) flow factor at every load,
// while the guessing/processor-sharing strategies degrade with load.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/analysis/table.h"
#include "src/analysis/thread_pool.h"
#include "src/numerics/stats.h"
#include "src/opt/convex_opt.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

namespace {

struct Row {
  numerics::RunningStats c, nc, wrr, laps, doubling;
};

void sweep_rate(double alpha, double rate, int seeds, Row& row) {
  analysis::ThreadPool pool;
  std::mutex mu;
  analysis::parallel_for(pool, static_cast<std::size_t>(seeds), [&](std::size_t s) {
    const Instance inst = workload::generate({.n_jobs = 14,
                                              .arrival_rate = rate,
                                              .seed = static_cast<std::uint64_t>(s + 1)});
    const ConvexOptResult opt =
        solve_fractional_opt(inst, alpha, {.slots = 400, .max_iters = 2500});
    if (opt.objective <= 0.0) return;
    const double c = run_c(inst, alpha).metrics.fractional_objective();
    const double nc = run_nc_uniform(inst, alpha).metrics.fractional_objective();
    const double wrr = run_wrr_known_weight(inst, alpha).metrics.fractional_objective();
    const double laps = run_laps(inst, alpha, 0.5).metrics.fractional_objective();
    const double dbl = run_doubling_nc(inst, alpha).metrics.fractional_objective();
    std::lock_guard<std::mutex> lk(mu);
    row.c.add(c / opt.objective);
    row.nc.add(nc / opt.objective);
    row.wrr.add(wrr / opt.objective);
    row.laps.add(laps / opt.objective);
    row.doubling.add(dbl / opt.objective);
  });
}

}  // namespace

int main() {
  std::printf("E16 (extension) — mean ratio vs numerical OPT across load (alpha = 2)\n");
  std::printf("(14-job uniform-density instances, 16 seeds per rate)\n\n");
  const double alpha = 2.0;

  Table t({"arrival rate", "C", "NC (this paper)", "WRR [7] (known W)", "LAPS (known W)",
           "guess-and-double"});
  for (double rate : {0.25, 0.5, 1.0, 2.0, 4.0, 8.0}) {
    Row row;
    sweep_rate(alpha, rate, 16, row);
    t.add_row({Table::cell(rate), Table::cell(row.c.mean()), Table::cell(row.nc.mean()),
               Table::cell(row.wrr.mean()), Table::cell(row.laps.mean()),
               Table::cell(row.doubling.mean())});
  }
  t.print(std::cout);

  std::printf("\ndiurnal day/night trace (non-homogeneous Poisson, 48 jobs):\n\n");
  Table t2({"amplitude", "C/OPT", "NC/OPT", "NC/C"});
  for (double amp : {0.0, 0.5, 0.9}) {
    const Instance inst = workload::diurnal_trace({.n_jobs = 48,
                                                   .base_rate = 1.5,
                                                   .amplitude = amp,
                                                   .period = 12.0,
                                                   .seed = 3});
    const ConvexOptResult opt =
        solve_fractional_opt(inst, alpha, {.slots = 700, .max_iters = 3000});
    const double c = run_c(inst, alpha).metrics.fractional_objective();
    const double nc = run_nc_uniform(inst, alpha).metrics.fractional_objective();
    t2.add_row({Table::cell(amp), Table::cell(c / opt.objective), Table::cell(nc / opt.objective),
                Table::cell(nc / c)});
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: NC/C is pinned near (1 + 1/(1-1/alpha))/2 = 1.5 at every\n");
  std::printf("load and amplitude; WRR/LAPS/doubling drift upward as the system saturates.\n");
  return 0;
}
