// E3 — Figure 2 of the paper: how the two runs respond to extra weight.
//
// Figure 2 shows the uniform-density analysis: processing an extra dw of
// job 2 extends the non-clairvoyant run by dT at its end (Fig 2a), while in
// the clairvoyant run the whole trajectory after r2 shifts — but the total
// extra time dT is identical (Fig 2b).  This bench reproduces both panels
// numerically and verifies the Lemma 6/7 measure-preserving property along
// the evolving instances I(T).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/ascii_chart.h"
#include "src/analysis/evolution.h"
#include "src/analysis/table.h"
#include "src/sim/speed_profile.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Series;
using analysis::Table;

namespace {

// The figure's two-job instance: job 1 at time 0 (weight w1), job 2 at r2.
Instance two_jobs(double w1, double r2, double w2) {
  return Instance({Job{kNoJob, 0.0, w1, 1.0}, Job{kNoJob, r2, w2, 1.0}});
}

}  // namespace

int main() {
  std::printf("E3 / Figure 2 — evolution under an extra dw of job 2 (alpha = 2)\n\n");
  const double alpha = 2.0;
  const double w1 = 1.0, r2 = 0.4;

  // Panel rendering: weight-processed trajectories for w2 and w2 + dw.
  Series nc_lo{"NC, w2", {}, {}, '.'};
  Series nc_hi{"NC, w2+dw", {}, {}, '#'};
  Series c_lo{"C, w2", {}, {}, '.'};
  Series c_hi{"C, w2+dw", {}, {}, '#'};
  const double w2 = 0.6, dw = 0.25;
  {
    const Instance lo = two_jobs(w1, r2, w2);
    const Instance hi = two_jobs(w1, r2, w2 + dw);
    const RunResult nlo = run_nc_uniform(lo, alpha);
    const RunResult nhi = run_nc_uniform(hi, alpha);
    const RunResult clo = run_c(lo, alpha);
    const RunResult chi = run_c(hi, alpha);
    const double T = std::max(nhi.schedule.makespan(), chi.schedule.makespan());
    for (int i = 0; i <= 100; ++i) {
      const double t = T * i / 100.0;
      nc_lo.x.push_back(t);
      nc_lo.y.push_back(std::pow(nlo.schedule.speed_at(t), alpha));
      nc_hi.x.push_back(t);
      nc_hi.y.push_back(std::pow(nhi.schedule.speed_at(t), alpha));
      c_lo.x.push_back(t);
      c_lo.y.push_back(std::pow(clo.schedule.speed_at(t), alpha));
      c_hi.x.push_back(t);
      c_hi.y.push_back(std::pow(chi.schedule.speed_at(t), alpha));
    }
    analysis::plot(std::cout, {nc_lo, nc_hi}, 72, 14,
                   "Fig 2a: non-clairvoyant runs — change confined to the end");
    std::printf("\n");
    analysis::plot(std::cout, {c_lo, c_hi}, 72, 14,
                   "Fig 2b: clairvoyant runs — whole tail after r2 shifts");
  }

  std::printf("\nThe extra completion time dT is the same in both algorithms:\n\n");
  Table t({"dw", "dT (NC)", "dT (C)", "|diff|"});
  for (double d : {0.4, 0.2, 0.1, 0.05, 0.025}) {
    const RunResult n0 = run_nc_uniform(two_jobs(w1, r2, w2), alpha);
    const RunResult n1 = run_nc_uniform(two_jobs(w1, r2, w2 + d), alpha);
    const RunResult c0 = run_c(two_jobs(w1, r2, w2), alpha);
    const RunResult c1 = run_c(two_jobs(w1, r2, w2 + d), alpha);
    const double dt_nc = n1.schedule.makespan() - n0.schedule.makespan();
    const double dt_c = c1.schedule.makespan() - c0.schedule.makespan();
    t.add_row({Table::cell(d), Table::cell(dt_nc, 8), Table::cell(dt_c, 8),
               Table::cell(std::abs(dt_nc - dt_c), 3)});
  }
  t.print(std::cout);

  std::printf("\nLemma 7 along the evolving instances I(T): rearrangement distance\n");
  std::printf("between the NC and C speed profiles of I(T), for increasing T:\n\n");
  Table t2({"T (prefix weight of job 2)", "rearrangement distance"});
  for (double frac : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    // I(T) has job 2 at its processed weight: emulate by scaling w2.
    const Instance it = two_jobs(w1, r2, w2 * frac);
    const RunResult n = run_nc_uniform(it, alpha);
    const RunResult c = run_c(it, alpha);
    t2.add_row({Table::cell(w2 * frac), Table::cell(rearrangement_distance(n.schedule, c.schedule), 3)});
  }
  t2.print(std::cout);

  std::printf("\nDifferential identities along a live NC run (finite differences of\n");
  std::printf("exact I(T) snapshots; Section 3's Eqn 4 and Lemmas 4/8 in derivative\n");
  std::printf("form; 12-job instance, alpha = 2):\n\n");
  {
    const Instance inst = workload::generate({.n_jobs = 12, .arrival_rate = 1.4, .seed = 2});
    const analysis::EvolutionReport rep = analysis::analyze_evolution(inst, alpha, 10);
    Table t3({"T", "job", "NC power", "dE^C/dT [Eqn 4]", "dF^NC/dT", "dFint/dT",
              "dFint/dF (<= 2-1/a)"});
    for (const auto& p : rep.probes) {
      t3.add_row({Table::cell(p.T, 4), Table::cell(static_cast<long>(p.job)),
                  Table::cell(p.nc_power), Table::cell(p.dEc_dT), Table::cell(p.dFnc_dT),
                  Table::cell(p.dFint_dT), Table::cell(p.dFint_dT / p.dFnc_dT, 4)});
    }
    t3.print(std::cout);
    std::printf("worst errors: Eqn4 %.2g, Lemma4 %.2g, Lemma8 excess %.2g\n",
                rep.worst_eqn4_error, rep.worst_lemma4_error, rep.worst_lemma8_excess);
  }

  std::printf("\nExpected shape: dT(NC) == dT(C) for every dw; rearrangement distances\n");
  std::printf("~ 0 (Lemma 6/7); dE^C/dT equals NC's power exactly (Eqn 4), and\n");
  std::printf("dFint/dF stays at or below 2 - 1/alpha (Lemma 8, tight when alone).\n");
  return 0;
}
