// E14 (extension) — speed scaling with a bounded maximum speed (cf. [6]).
//
// A hard cap s <= s_max is the extended power function "s^alpha below s_max,
// infinite beyond", so the paper's general-P lemmas should transfer: equal
// energy (Lemma 3) and measure-preserving speed profiles (Lemma 6) between
// the capped NC and capped C — while the power-law-specific flow ratio
// 1/(1-1/alpha) (Lemma 4) should drift once the cap binds.  This bench
// measures all three across cap levels, plus the cost of the cap itself.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/bounds.h"
#include "src/algo/speed_bounded.h"
#include "src/analysis/table.h"
#include "src/sim/speed_profile.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E14 (extension) — bounded maximum speed\n");
  std::printf("(uniform density, 16 jobs, alpha = 2)\n\n");

  const double alpha = 2.0;
  const Instance inst = workload::generate({.n_jobs = 16, .arrival_rate = 2.0, .seed = 9});
  const RunResult unb_c = run_c(inst, alpha);
  const RunResult unb_nc = run_nc_uniform(inst, alpha);

  double peak = 0.0;
  for (int i = 0; i <= 2000; ++i) {
    peak = std::max(peak, unb_c.schedule.speed_at(unb_c.schedule.makespan() * i / 2000.0));
  }
  std::printf("unbounded clairvoyant peak speed: %.4f\n\n", peak);

  Table t({"s_max", "cap binds?", "energy(Cb)", "energy gap NCb vs Cb [Lem 3]",
           "rearrange dist [Lem 6]", "flow(NCb)/flow(Cb)", "1/(1-1/a)",
           "objective vs unbounded C"});
  for (double f : {0.3, 0.5, 0.7, 0.9, 1.2, 4.0}) {
    const double s_max = f * peak;
    const BoundedRun cb = run_c_bounded(inst, alpha, s_max);
    const BoundedRun ncb = run_nc_bounded(inst, alpha, s_max);
    const double e_gap = std::abs(ncb.result.metrics.energy - cb.result.metrics.energy) /
                         cb.result.metrics.energy;
    const double rd = rearrangement_distance(ncb.result.schedule, cb.result.schedule);
    t.add_row({Table::cell(s_max), f < 1.0 ? "yes" : "no",
               Table::cell(cb.result.metrics.energy), Table::cell(e_gap, 3),
               Table::cell(rd, 3),
               Table::cell(ncb.result.metrics.fractional_flow /
                           cb.result.metrics.fractional_flow, 6),
               Table::cell(bounds::nc_over_c_flow(alpha), 6),
               Table::cell(cb.result.metrics.fractional_objective() /
                           unb_c.metrics.fractional_objective())});
  }
  t.print(std::cout);

  std::printf("\nSingle-job cost vs cap level (V = 4, shows the price of capping):\n\n");
  Table t2({"s_max", "C bounded objective", "NC bounded objective"});
  for (double s_max : {0.25, 0.5, 1.0, 2.0, 8.0}) {
    const Instance one({Job{kNoJob, 0.0, 4.0, 1.0}});
    const BoundedRun cb = run_c_bounded(one, alpha, s_max);
    const BoundedRun ncb = run_nc_bounded(one, alpha, s_max);
    t2.add_row({Table::cell(s_max), Table::cell(cb.result.metrics.fractional_objective()),
                Table::cell(ncb.result.metrics.fractional_objective())});
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: energy gaps and rearrangement distances ~ 0 at every cap\n");
  std::printf("(the general-P lemmas transfer); the flow ratio equals 1/(1-1/alpha) only\n");
  std::printf("when the cap never binds; costs rise as the cap tightens.\n");
  return 0;
}
