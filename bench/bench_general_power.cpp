// E11 — Lemma 3 and Lemma 6 beyond power laws.
//
// The paper notes both lemmas hold for EVERY monotone convex power function;
// only the flow-time comparison (Lemma 4) needs P = s^alpha.  The generic
// numeric engine integrates the defining ODEs for a leaky power law and an
// exponential power function and reports the energy equality and level-set
// agreement, plus the flow ratio — which is NOT the power-law constant,
// illustrating exactly where s^alpha enters the analysis.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>

#include "src/analysis/table.h"
#include "src/core/power.h"
#include "src/sim/numeric_engine.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E11 — Lemmas 3/6 for general power functions (numeric engine)\n");
  std::printf("(uniform-density instances, 6 jobs; leaky completions truncated at 1e-9)\n\n");

  std::vector<std::unique_ptr<PowerFunction>> fns;
  fns.push_back(std::make_unique<PowerLaw>(2.0));
  fns.push_back(std::make_unique<PowerLaw>(3.0));
  fns.push_back(std::make_unique<LeakyPowerLaw>(2.0, 0.5));
  fns.push_back(std::make_unique<LeakyPowerLaw>(3.0, 2.0));
  fns.push_back(std::make_unique<ExpPower>());

  Table t({"power function", "energy(C)", "energy(NC)", "rel gap [Lem 3]",
           "max level-set gap [Lem 6]", "flow(NC)/flow(C)"});
  for (const auto& fn : fns) {
    const Instance inst = workload::generate({.n_jobs = 6, .arrival_rate = 1.2, .seed = 23});
    const SampledRun c = run_generic_c(inst, *fn);
    const SampledRun nc = run_generic_nc_uniform(inst, *fn);
    double s_max = 0.0;
    for (double s : c.speed) s_max = std::max(s_max, s);
    double worst = 0.0;
    for (int i = 1; i <= 19; ++i) {
      const double x = s_max * i / 20.0;
      worst = std::max(worst, std::abs(nc.time_at_or_above(x) - c.time_at_or_above(x)));
    }
    t.add_row({fn->name(), Table::cell(c.energy), Table::cell(nc.energy),
               Table::cell(std::abs(nc.energy - c.energy) / c.energy, 3),
               Table::cell(worst, 3),
               Table::cell(nc.fractional_flow / c.fractional_flow)});
  }
  t.print(std::cout);

  std::printf("\nFor P = s^alpha the flow ratio must equal 1/(1-1/alpha): 2 at alpha=2,\n");
  std::printf("1.5 at alpha=3.  For the other functions the ratio drifts from any such\n");
  std::printf("constant — Lemma 4 is genuinely power-law-specific, Lemmas 3/6 are not.\n");
  return 0;
}
