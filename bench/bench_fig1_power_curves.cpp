// E2 — Figure 1 of the paper: the single-job power curves.
//
// Figure 1a: the clairvoyant power curve (power = remaining weight decays to
// zero; flow-time area equals energy area).  Figure 1b: the non-clairvoyant
// power curve (power = processed weight) — the same curve traversed in
// reverse; the flow-time is the area ABOVE the curve, and the key fact of
// Section 1.2 is that the flow/energy area ratio depends only on alpha
// (it equals 1/(1-1/alpha)), independent of the job's weight.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/ascii_chart.h"
#include "src/analysis/table.h"
#include "src/core/kinematics.h"
#include "src/opt/single_job_opt.h"

using namespace speedscale;
using analysis::Series;
using analysis::Table;

int main() {
  std::printf("E2 / Figure 1 — single-job power curves (alpha = 2, W = 1)\n\n");
  const double alpha = 2.0;
  const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
  const RunResult c = run_c(inst, alpha);
  const RunResult nc = run_nc_uniform(inst, alpha);

  // Sample power(t) = P(s(t)) = s(t)^alpha along both schedules.
  Series sc{"clairvoyant P=W (Fig 1a)", {}, {}, 'c'};
  Series sn{"non-clairvoyant P=processed (Fig 1b)", {}, {}, 'n'};
  const double T = std::max(c.schedule.makespan(), nc.schedule.makespan());
  for (int i = 0; i <= 120; ++i) {
    const double t = T * i / 120.0;
    sc.x.push_back(t);
    sc.y.push_back(std::pow(c.schedule.speed_at(t), alpha));
    sn.x.push_back(t);
    sn.y.push_back(std::pow(nc.schedule.speed_at(t), alpha));
  }
  analysis::plot(std::cout, {sc, sn}, 72, 16, "power (= driving weight) vs time");
  std::printf("\nThe two curves are exact mirror images (the paper's reversal).\n\n");

  std::printf("Area ratio (flow-time / energy) of the NC curve: independent of weight,\n");
  std::printf("equal to 1/(1 - 1/alpha)  [the crucial single-job observation]\n\n");
  Table t({"alpha", "W=0.25", "W=1", "W=4", "W=64", "1/(1-1/alpha)"});
  for (double a : {1.5, 2.0, 3.0, 5.0}) {
    std::vector<std::string> row{Table::cell(a)};
    for (double w : {0.25, 1.0, 4.0, 64.0}) {
      const Instance one({Job{kNoJob, 0.0, w, 1.0}});  // unit density: V = W
      const RunResult r = run_nc_uniform(one, a);
      row.push_back(Table::cell(r.metrics.fractional_flow / r.metrics.energy, 6));
    }
    row.push_back(Table::cell(1.0 / (1.0 - 1.0 / a), 6));
    t.add_row(row);
  }
  t.print(std::cout);

  std::printf("\nSingle-job objective vs the true offline optimum (closed form):\n\n");
  Table t2({"alpha", "opt", "C (frac)", "NC (frac)", "NC/opt", "Thm 5 bound"});
  for (double a : {1.5, 2.0, 3.0, 5.0}) {
    const SingleJobFracOpt opt = single_job_frac_opt(1.0, 1.0, a);
    const Instance one({Job{kNoJob, 0.0, 1.0, 1.0}});
    const RunResult rc = run_c(one, a);
    const RunResult rn = run_nc_uniform(one, a);
    t2.add_row({Table::cell(a), Table::cell(opt.objective),
                Table::cell(rc.metrics.fractional_objective()),
                Table::cell(rn.metrics.fractional_objective()),
                Table::cell(rn.metrics.fractional_objective() / opt.objective),
                Table::cell(2.0 + 1.0 / (a - 1.0))});
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: area ratios constant across W and equal to the formula;\n");
  std::printf("single-job NC/opt well below the Theorem 5 bound.\n");
  return 0;
}
