// E9 — the FIFO/HDF conflict and the speed rule (Section 1.2 ablations).
//
// Two ablations of Algorithm NC's design:
//  (1) Speed rule: replace the per-job clairvoyant offset with the naive
//      "P = total processed weight" — the exact identities break and the
//      ratio degrades on sparse instances.
//  (2) Job order (non-uniform): pure FIFO (density-blind) instead of
//      rounded-HDF — high-density jobs queue behind bulky low-density ones.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/analysis/table.h"
#include "src/numerics/stats.h"
#include "src/workload/adversarial.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E9 — design-rule ablations (Section 1.2's FIFO vs HDF conflict)\n\n");

  std::printf("(1) Speed rule: Algorithm NC vs the naive P = total-processed rule\n");
  std::printf("    (uniform density, alpha = 2; ratio vs Algorithm C; 12 seeds per rate)\n\n");
  Table t({"arrival rate", "NC/C (frac)", "naive/C (frac)", "NC energy == C energy?",
           "naive energy / C energy"});
  for (double rate : {0.2, 0.5, 1.0, 2.0, 4.0}) {
    numerics::RunningStats nc_ratio, naive_ratio, naive_energy;
    double worst_gap = 0.0;
    for (int seed = 1; seed <= 12; ++seed) {
      const Instance inst = workload::generate({.n_jobs = 16,
                                                .arrival_rate = rate,
                                                .seed = static_cast<std::uint64_t>(seed)});
      const RunResult c = run_c(inst, 2.0);
      const RunResult nc = run_nc_uniform(inst, 2.0);
      const RunResult naive = run_naive_nc(inst, 2.0);
      nc_ratio.add(nc.metrics.fractional_objective() / c.metrics.fractional_objective());
      naive_ratio.add(naive.metrics.fractional_objective() / c.metrics.fractional_objective());
      naive_energy.add(naive.metrics.energy / c.metrics.energy);
      worst_gap = std::max(worst_gap, std::abs(nc.metrics.energy - c.metrics.energy) /
                                          c.metrics.energy);
    }
    t.add_row({Table::cell(rate), Table::cell(nc_ratio.mean()), Table::cell(naive_ratio.mean()),
               worst_gap < 1e-9 ? "yes (gap < 1e-9)" : Table::cell(worst_gap, 3),
               Table::cell(naive_energy.mean())});
  }
  t.print(std::cout);

  std::printf("\n(2) Order rule (non-uniform): rounded-HDF vs density-blind FIFO\n");
  std::printf("    on the FIFO/HDF-conflict instance (one bulky low-density job,\n");
  std::printf("    bursts of urgent high-density jobs); alpha = 2.\n\n");
  Table t2({"density ratio", "C (frac)", "NC rounded-HDF", "NC density-blind",
            "HDF/C", "blind/C"});
  for (double ratio : {5.0, 20.0, 80.0}) {
    const Instance inst = workload::fifo_hdf_conflict_instance(3, 3, ratio);
    const RunResult c = run_c(inst, 2.0);
    const NCNonUniformRun hdf = run_nc_nonuniform(inst, 2.0);
    // Density-blind: feed the algorithm the same instance with densities
    // erased (all 1) for ORDERING, but evaluate with true densities by
    // running the rounded machinery on a unit-density copy and replaying.
    NCNonUniformParams blind_params;
    blind_params.round_densities = true;
    std::vector<Job> unit_jobs = inst.jobs();
    for (Job& j : unit_jobs) j.density = 1.0;
    const Instance unit_inst{std::move(unit_jobs)};
    const NCNonUniformRun blind = run_nc_nonuniform(unit_inst, 2.0, blind_params);
    // Replay the blind schedule against the TRUE instance for fair metrics.
    Schedule replay(2.0);
    for (const Segment& seg : blind.result.schedule.segments()) replay.append(seg);
    for (const auto& [id, ct] : blind.result.schedule.completions()) {
      replay.set_completion(id, ct);
    }
    const PowerLaw p(2.0);
    const Metrics blind_m = compute_metrics(inst, replay, p);
    t2.add_row({Table::cell(ratio), Table::cell(c.metrics.fractional_objective()),
                Table::cell(hdf.result.metrics.fractional_objective()),
                Table::cell(blind_m.fractional_objective()),
                Table::cell(hdf.result.metrics.fractional_objective() /
                            c.metrics.fractional_objective()),
                Table::cell(blind_m.fractional_objective() /
                            c.metrics.fractional_objective())});
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: naive speed rule wastes energy on sparse instances\n");
  std::printf("(rate << 1) and its energy identity gap is large; density-blind ordering\n");
  std::printf("degrades steeply as the density ratio grows, rounded-HDF stays flat.\n");
  return 0;
}
