// E4 — Figure 3 of the paper: preemption-interval structure and the
// Section 4 properties (A), (B) and Lemma 13, measured along a live run of
// the non-uniform Algorithm NC.
//
// At every event of the NC run we snapshot the current instance I(t), run
// Algorithm C on it, and extract the preemption structure of the active
// low-density job (Figure 3's j*), plus the three quantities the analysis
// tracks: zeta (Property A: remaining fraction of each active job in C),
// gamma (Property B: processed-volume domination), and psi (Lemma 13:
// completion-time gap).
#include <cmath>
#include <algorithm>
#include <cstdio>
#include <vector>
#include <iostream>

#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/preemption.h"
#include "src/analysis/table.h"
#include "src/sim/c_machine.h"
#include "src/workload/adversarial.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E4 / Figure 3 — preemption structure of C on the current instance I(t)\n\n");
  const double alpha = 2.0;

  // A hand-built Figure-3-style instance: one long low-density job, two
  // bursts of high-density preempting jobs.
  const Instance fig3 = workload::fifo_hdf_conflict_instance(2, 2, 25.0);
  {
    const Schedule c = run_algorithm_c(fig3, alpha);
    const PreemptionStructure ps = preemption_structure(c, fig3, 0);
    std::printf("Algorithm C on the Figure-3 instance, target job j* = 0 "
                "(r = %.2f, completes %.3f):\n\n",
                ps.release, ps.completion);
    Table t({"interval i", "R_i (start)", "end", "preempting volume V_i", "W_i = W(R_i^-)"});
    for (std::size_t i = 0; i < ps.intervals.size(); ++i) {
      const auto& in = ps.intervals[i];
      t.add_row({Table::cell(static_cast<long>(i + 1)), Table::cell(in.start),
                 Table::cell(in.end), Table::cell(in.preempting_volume),
                 Table::cell(in.weight_at_start)});
    }
    t.print(std::cout);
    std::printf("(i* = %d is the last preemption interval, as in the figure)\n\n",
                ps.last_index() + 1);
  }

  std::printf("Properties (A)/(B) and Lemma 13 along a non-uniform NC run:\n\n");
  const Instance inst = workload::generate({.n_jobs = 14,
                                            .arrival_rate = 1.0,
                                            .density_mode = workload::DensityMode::kClasses,
                                            .density_classes = 3,
                                            .density_spread = 30.0,
                                            .seed = 11});
  const Instance rounded = inst.rounded_densities(4.5);

  double min_zeta = kInf, min_gamma = kInf, min_psi = kInf;
  long snapshots = 0;
  double last_snapshot_t = -1.0;

  NCNonUniformRun run = run_nc_nonuniform(
      inst, alpha, {}, [&](double t, const std::vector<double>& processed) {
        if (t <= last_snapshot_t) return;
        last_snapshot_t = t;
        std::vector<JobId> kept;
        const Instance cur = make_current_instance(rounded, processed, t, &kept);
        if (cur.empty()) return;
        ++snapshots;
        CMachine m(alpha);
        for (const Job& j : cur.jobs()) m.add_job(j);
        CMachine at_t = m;  // copy to probe the state at time t
        at_t.advance_to(t);
        m.run_to_completion();

        double vol_c_by_t = 0.0;
        for (std::size_t i = 0; i < cur.size(); ++i) {
          const JobId local = static_cast<JobId>(i);
          const JobId orig = kept[i];
          const Job& oj = inst.job(orig);
          const bool active = processed[static_cast<std::size_t>(orig)] < oj.volume - 1e-12;
          vol_c_by_t += cur.jobs()[i].volume - at_t.remaining_volume(local);
          if (!active) continue;
          // Property (A): W_t^C(t)[j] >= zeta * W_t[j].
          const double frac = at_t.remaining_volume(local) / cur.jobs()[i].volume;
          min_zeta = std::min(min_zeta, frac);
          // Lemma 13: c_t^C[j] - t >= psi * (t - r[j]).
          const double age = t - oj.release;
          if (age > 1e-9) {
            min_psi = std::min(min_psi, (m.schedule().completion(local) - t) / age);
          }
        }
        // Property (B) at t1 = 0: volume processed by NC vs by C up to t.
        double vol_nc = 0.0;
        for (std::size_t i = 0; i < kept.size(); ++i) vol_nc += cur.jobs()[i].volume;
        // NC has processed exactly the current-instance volumes.
        if (vol_c_by_t > 1e-12) min_gamma = std::min(min_gamma, vol_nc / vol_c_by_t);
      });

  std::printf("snapshots taken: %ld (NC steps %ld, inner C sims %ld)\n\n", snapshots,
              run.steps, run.c_evaluations);
  Table props({"quantity", "paper role", "measured min over run"});
  props.add_row({"zeta", "Property (A), Lemma 11: W_t^C(t)[j] >= zeta W_t[j]",
             Table::cell(min_zeta)});
  props.add_row({"gamma", "Property (B), Lemma 12: V^NC(t1,t) >= gamma V_t^C(t1,t)",
             Table::cell(min_gamma)});
  props.add_row({"psi", "Lemma 13: c_t^C[j] - t >= psi (t - r[j])", Table::cell(min_psi)});
  props.print(std::cout);

  // Lemma 14's quantity: when dW is added to the current job j*, how much
  // of it survives as remaining weight at the start of the LAST preemption
  // interval R_{i*}?  Measured by finite-difference perturbation of I(t).
  std::printf("\nLemma 14 probe: d W_t^C(R_i*)[j*] / dW along the same run:\n\n");
  double min_l14 = kInf, max_l14 = 0.0;
  long l14_samples = 0;
  std::vector<double> prev_processed(inst.size(), 0.0);
  last_snapshot_t = -1.0;
  (void)run_nc_nonuniform(
      inst, alpha, {}, [&](double t, const std::vector<double>& processed) {
        // Identify j*: the job whose processed volume advanced.
        JobId jstar = kNoJob;
        for (std::size_t i = 0; i < processed.size(); ++i) {
          if (processed[i] > prev_processed[i] + 1e-15) jstar = static_cast<JobId>(i);
        }
        prev_processed = processed;
        if (jstar == kNoJob || t <= last_snapshot_t) return;
        last_snapshot_t = t;
        std::vector<JobId> kept;
        const Instance cur = make_current_instance(rounded, processed, t, &kept);
        const auto it = std::find(kept.begin(), kept.end(), jstar);
        if (it == kept.end()) return;
        const auto local = static_cast<JobId>(it - kept.begin());
        const Schedule cs = run_algorithm_c(cur, alpha);
        const PreemptionStructure ps = preemption_structure(cs, cur, local);
        if (ps.intervals.empty()) return;
        const double r_star = ps.intervals.back().start;
        const double rho = cur.job(local).density;
        const auto jstar_weight_at = [&](const Instance& in) {
          CMachine m(alpha);
          for (const Job& j : in.jobs()) m.add_job(j);
          m.advance_to(r_star);
          return rho * m.remaining_volume(local);
        };
        const double dv = 1e-4 * cur.job(local).volume;
        std::vector<Job> perturbed = cur.jobs();
        perturbed[static_cast<std::size_t>(local)].volume += dv;
        const double w0 = jstar_weight_at(cur);
        const double w1 = jstar_weight_at(Instance(std::move(perturbed)));
        const double ratio = (w1 - w0) / (rho * dv);
        min_l14 = std::min(min_l14, ratio);
        max_l14 = std::max(max_l14, ratio);
        ++l14_samples;
      });
  if (l14_samples > 0) {
    std::printf("  samples: %ld; dW survival ratio at R_i*: min %.4f, max %.4f\n",
                l14_samples, min_l14, max_l14);
  } else {
    std::printf("  (no preempted snapshots on this instance)\n");
  }

  std::printf("\nExpected shape: all three minima are strictly positive constants —\n");
  std::printf("the inductive invariants the paper's Section 4 analysis maintains —\n");
  std::printf("and the Lemma 14 survival ratio stays a positive constant fraction.\n");
  return 0;
}
