// E12 — quality of the numerical offline optimum (convex solver).
//
// (a) Single-job validation against the closed-form Euler-Lagrange optimum.
// (b) Grid-refinement convergence on a multi-job instance.
// (c) The C / OPT ratio stays under Theorem 1's bound of 2 across workloads.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/table.h"
#include "src/numerics/stats.h"
#include "src/opt/convex_opt.h"
#include "src/opt/single_job_opt.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E12 — convex offline-OPT solver validation\n\n");

  std::printf("(a) single job (V = 1, rho = 1) vs the closed form:\n\n");
  Table t({"alpha", "closed form", "solver (600 slots)", "rel err", "iters"});
  for (double alpha : {1.5, 2.0, 3.0}) {
    const SingleJobFracOpt exact = single_job_frac_opt(1.0, 1.0, alpha);
    const Instance inst({Job{kNoJob, 0.0, 1.0, 1.0}});
    const ConvexOptResult num = solve_fractional_opt(inst, alpha, {.slots = 600});
    t.add_row({Table::cell(alpha), Table::cell(exact.objective), Table::cell(num.objective),
               Table::cell(std::abs(num.objective - exact.objective) / exact.objective, 3),
               Table::cell(static_cast<long>(num.iterations))});
  }
  t.print(std::cout);

  std::printf("\n(b) grid refinement (8-job instance, alpha = 2):\n\n");
  const Instance inst = workload::generate({.n_jobs = 8, .arrival_rate = 1.5, .seed = 3});
  Table t2({"slots", "objective", "iterations"});
  for (int slots : {100, 200, 400, 800, 1600}) {
    const ConvexOptResult r = solve_fractional_opt(inst, 2.0, {.slots = slots});
    t2.add_row({Table::cell(static_cast<long>(slots)), Table::cell(r.objective, 8),
                Table::cell(static_cast<long>(r.iterations))});
  }
  t2.print(std::cout);

  std::printf("\n(c) Theorem 1 / Theorem 5 head-room across workloads (alpha = 2):\n\n");
  Table t3({"workload", "C/OPT mean", "C/OPT max", "NC/OPT mean", "NC/OPT max"});
  struct Cfg {
    const char* name;
    workload::VolumeDist dist;
    double rate;
  };
  for (const Cfg& cfg : {Cfg{"exp volumes, rate 1.5", workload::VolumeDist::kExponential, 1.5},
                         Cfg{"pareto volumes, rate 1.5", workload::VolumeDist::kPareto, 1.5},
                         Cfg{"exp volumes, bursty rate 6", workload::VolumeDist::kExponential,
                             6.0}}) {
    numerics::RunningStats rc, rn;
    for (int seed = 1; seed <= 10; ++seed) {
      const Instance w = workload::generate({.n_jobs = 12,
                                             .arrival_rate = cfg.rate,
                                             .volume_dist = cfg.dist,
                                             .seed = static_cast<std::uint64_t>(seed)});
      const ConvexOptResult opt = solve_fractional_opt(w, 2.0, {.slots = 500, .max_iters = 3000});
      if (opt.objective <= 0.0) continue;
      rc.add(run_c(w, 2.0).metrics.fractional_objective() / opt.objective);
      rn.add(run_nc_uniform(w, 2.0).metrics.fractional_objective() / opt.objective);
    }
    t3.add_row({cfg.name, Table::cell(rc.mean()), Table::cell(rc.max()), Table::cell(rn.mean()),
                Table::cell(rn.max())});
  }
  t3.print(std::cout);
  std::printf("\nExpected shape: single-job errors ~1e-2 or better; objectives decrease\n");
  std::printf("monotonically with refinement; C/OPT < 2 and NC/OPT < 3 everywhere.\n");
  return 0;
}
