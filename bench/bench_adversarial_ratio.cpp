// E17 (extension) — empirical tightness of the Theorem 5 bound.
//
// Upper bound (paper): Algorithm NC is (2 + 1/(alpha-1))-competitive for the
// fractional objective.  This bench produces *lower bounds* on its true
// competitive ratio by adversarial search:
//   (a) the single-job stopping game (exact up to the stop grid) for NC and
//       for the guess-and-double strawman — showing NC's ratio is constant
//       in the stopping volume (scale invariance) while guessing is not;
//   (b) coordinate-ascent over n-job instance families, maximizing
//       NC / numerical-OPT.
// The gap between the found lower bound and 2 + 1/(alpha-1) is how much of
// the paper's constant is analysis slack (at least on these families).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/bounds.h"
#include "src/analysis/table.h"
#include "src/analysis/worst_case.h"
#include "src/workload/trace_io.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E17 (extension) — adversarial lower bounds vs Theorem 5's upper bound\n\n");

  std::printf("(a) single-job stopping game (unit density):\n\n");
  Table t({"alpha", "NC worst ratio", "at volume", "doubling worst", "at volume",
           "Thm 5 bound"});
  for (double alpha : {1.5, 2.0, 3.0}) {
    const auto nc_cost = [&](double v) {
      const Instance one({Job{kNoJob, 0.0, v, 1.0}});
      return run_nc_uniform(one, alpha).metrics.fractional_objective();
    };
    const auto dbl_cost = [&](double v) {
      const Instance one({Job{kNoJob, 0.0, v, 1.0}});
      return run_doubling_nc(one, alpha).metrics.fractional_objective();
    };
    const analysis::SingleJobGameResult nc = analysis::single_job_game(nc_cost, alpha);
    const analysis::SingleJobGameResult dbl = analysis::single_job_game(dbl_cost, alpha);
    t.add_row({Table::cell(alpha), Table::cell(nc.worst_ratio), Table::cell(nc.worst_volume, 3),
               Table::cell(dbl.worst_ratio), Table::cell(dbl.worst_volume, 3),
               Table::cell(bounds::nc_uniform_fractional(alpha))});
  }
  t.print(std::cout);
  std::printf("\n(NC's single-job ratio is flat in V — the adversary gains nothing by\n");
  std::printf("choosing when to stop; the doubling strawman's ratio oscillates with V.)\n\n");

  std::printf("(b) coordinate-ascent worst instances (NC / numerical OPT):\n\n");
  Table t2({"alpha", "n jobs", "found ratio", "evals", "Thm 5 bound", "slack factor"});
  for (double alpha : {1.5, 2.0, 3.0}) {
    for (int n : {2, 3, 4}) {
      analysis::WorstCaseOptions opts;
      opts.n_jobs = n;
      opts.seed = 5;
      opts.report_tightest = 3;
      // Three seeded restarts sharded across three workers: a deeper lower
      // bound in the single-restart wall time, with the same result at any
      // jobs value (the restart sweep reduces in index order).
      opts.restarts = 3;
      opts.jobs = 3;
      const analysis::WorstCaseResult w = analysis::find_worst_nc_instance(alpha, opts);
      t2.add_row({Table::cell(alpha), Table::cell(static_cast<long>(n)), Table::cell(w.ratio),
                  Table::cell(static_cast<long>(w.evaluations)),
                  Table::cell(bounds::nc_uniform_fractional(alpha)),
                  Table::cell(bounds::nc_uniform_fractional(alpha) / w.ratio)});
      if (alpha == 2.0 && n == 3) {
        std::printf("\n  worst 3-job instance at alpha=2:\n");
        for (const Job& j : w.instance.jobs()) {
          std::printf("    job %d: release %.4f volume %.4f\n", j.id, j.release, j.volume);
        }
        std::printf("\n  tightest certificates (release slack, smallest first):\n");
        for (const auto& r : w.tightest_certificates) {
          std::printf("    t=%.4f job %d: slack %.4f (committed %.4f vs budget %.4f)\n",
                      r.t, r.job, r.slack, r.alg_cum + r.phi, r.slack + r.alg_cum + r.phi);
        }
        std::printf("\n");
      }
    }
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: found ratios strictly below the Theorem 5 bound (it is an\n");
  std::printf("upper bound) but well above the single-job ratio — waiting chains are the\n");
  std::printf("adversary's lever; the remaining slack is the analysis constant.\n");
  return 0;
}
