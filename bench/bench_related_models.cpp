// E18 (extension) — the related speed-scaling models the paper cites:
//   [3] minimum-energy scheduling with deadlines (YDS offline vs AVR online)
//   [4] flow-time minimization under a hard energy budget
// These situate the flow+energy objective: deadline scheduling is the
// ancestor model, and the budgeted problem traces the energy-delay Pareto
// frontier whose scalarization IS the paper's objective.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <random>

#include "src/algo/yds.h"
#include "src/analysis/ascii_chart.h"
#include "src/analysis/table.h"
#include "src/opt/budgeted.h"
#include "src/opt/convex_opt.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Series;
using analysis::Table;

namespace {

DeadlineInstance random_deadline_instance(int n, double slack, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, 1.0);
  std::vector<DeadlineJob> jobs;
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    t += u(rng);
    DeadlineJob j;
    j.release = t;
    j.deadline = t + slack * (0.5 + u(rng));
    j.volume = 0.2 + 2.0 * u(rng);
    jobs.push_back(j);
  }
  return DeadlineInstance(std::move(jobs));
}

}  // namespace

int main() {
  std::printf("E18 (extension) — related models: deadlines [3] and energy budgets [4]\n\n");

  std::printf("[3] deadline scheduling: YDS (offline optimal) vs the online OA and AVR:\n\n");
  Table t({"alpha", "window slack", "YDS energy", "OA energy", "AVR energy", "OA/YDS",
           "AVR/YDS"});
  for (double alpha : {2.0, 3.0}) {
    for (double slack : {0.75, 1.5, 3.0, 6.0}) {
      double yds_sum = 0.0, oa_sum = 0.0, avr_sum = 0.0;
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        const DeadlineInstance inst = random_deadline_instance(10, slack, seed);
        yds_sum += run_yds(inst, alpha).energy;
        oa_sum += run_oa(inst, alpha).energy;
        avr_sum += run_avr(inst, alpha).energy;
      }
      t.add_row({Table::cell(alpha), Table::cell(slack), Table::cell(yds_sum / 8.0),
                 Table::cell(oa_sum / 8.0), Table::cell(avr_sum / 8.0),
                 Table::cell(oa_sum / yds_sum), Table::cell(avr_sum / yds_sum)});
    }
  }
  t.print(std::cout);

  std::printf("\n[4] the energy-delay Pareto frontier (8-job instance, alpha = 2):\n");
  std::printf("    (the flow+energy optimum is the frontier point with slope -1)\n\n");
  const Instance inst = workload::generate({.n_jobs = 8, .arrival_rate = 1.2, .seed = 3});
  const ConvexOptResult joint = solve_fractional_opt(inst, 2.0, {.slots = 350});
  Table t2({"energy budget", "achieved energy", "min flow", "flow+energy", "mu"});
  Series frontier{"Pareto frontier (flow vs energy)", {}, {}, '*'};
  for (double f : {0.4, 0.6, 0.8, 1.0, 1.4, 2.0, 3.0}) {
    const double budget = f * joint.energy;
    const BudgetedResult r =
        solve_flow_under_energy_budget(inst, 2.0, budget, {.slots = 350, .max_iters = 2000});
    t2.add_row({Table::cell(budget), Table::cell(r.energy), Table::cell(r.flow),
                Table::cell(r.energy + r.flow), Table::cell(r.multiplier, 3)});
    frontier.x.push_back(r.energy);
    frontier.y.push_back(r.flow);
  }
  t2.print(std::cout);
  std::printf("\n(joint flow+energy optimum: energy %.4f, flow %.4f, objective %.4f)\n\n",
              joint.energy, joint.fractional_flow, joint.objective);
  analysis::plot(std::cout, {frontier}, 72, 14, "flow vs energy");
  std::printf("\nExpected shape: AVR/YDS grows with window slack (AVR wastes speed when\n");
  std::printf("windows overlap richly) but stays within the constant-factor regime; the\n");
  std::printf("frontier is convex and the flow+energy optimum sits where its slope is -1.\n");
  return 0;
}
