// E20 — robustness overhead (google-benchmark).
//
// The guards added by the robustness layer promise the same cost discipline
// as the observability sites: a dormant fault-injection site is one relaxed
// atomic load, the NaN guard in the ODE inner loop is one isfinite branch,
// and the post-run invariant checker is a single O(samples) pass.  This
// bench isolates each cost so regressions show up as numbers, not folklore:
//
//   * the dormant fault_fire site, alone in a loop;
//   * the numeric engine with and without an installed (never-firing) plan;
//   * the guarded engine vs the raw engine (checker + ladder bookkeeping);
//   * the invariant checker pass by itself.
#include <benchmark/benchmark.h>

#include <cstdint>

#include "src/core/power.h"
#include "src/obs/metrics_registry.h"
#include "src/robust/fault_injection.h"
#include "src/robust/guarded_engine.h"
#include "src/robust/invariants.h"
#include "src/sim/numeric_engine.h"
#include "src/workload/generators.h"

using namespace speedscale;

namespace {

Instance make_uniform(int n, std::uint64_t seed = 1) {
  return workload::generate({.n_jobs = n, .arrival_rate = 1.5, .seed = seed});
}

NumericConfig bench_config() {
  NumericConfig cfg;
  cfg.substeps_per_interval = 256;  // keep iterations fast; ratio is what matters
  return cfg;
}

// The raw cost of a dormant injection site: one relaxed load, ~1 ns/iter.
void BM_DormantFaultSite(benchmark::State& state) {
  robust::FaultInjector::instance().clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::fault_fire(robust::FaultSite::kOdeSubstepNaN));
  }
}
BENCHMARK(BM_DormantFaultSite);

// An installed plan that never fires: every substep now takes the mutex-
// guarded slow path.  This is the *test-only* configuration; the delta vs
// BM_NumericEngine_NoPlan is the price tests pay, not production.
void BM_NumericEngine_NoPlan(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  const PowerLaw p(2.0);
  const NumericConfig cfg = bench_config();
  robust::FaultInjector::instance().clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_generic_c(inst, p, cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NumericEngine_NoPlan)->Arg(8)->Arg(32);

void BM_NumericEngine_IdlePlanInstalled(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  const PowerLaw p(2.0);
  const NumericConfig cfg = bench_config();
  // Fires at an index the run never reaches.
  robust::ScopedFaultPlan plan(
      robust::FaultPlan{}.fire(robust::FaultSite::kOdeSubstepNaN, {~0ULL}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_generic_c(inst, p, cfg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_NumericEngine_IdlePlanInstalled)->Arg(8)->Arg(32);

// Guarded vs raw: the clean-path premium is one invariant-checker pass plus
// the RunOutcome plumbing (no retries happen here).
void BM_GuardedEngine_CleanPath(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  const PowerLaw p(2.0);
  robust::GuardedNumericOptions opts;
  opts.base = bench_config();
  opts.alpha = 2.0;
  robust::FaultInjector::instance().clear();
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::run_generic_c_guarded(inst, p, opts));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GuardedEngine_CleanPath)->Arg(8)->Arg(32);

// The retry path: a NaN injected at a fixed substep rejects attempt 0, the
// ladder doubles substeps and attempt 1 lands clean.  Pins the guarded
// engine's attempted/committed work split — attempted counts every rung's
// deterministic work units, committed only the accepted rung's (a rejected
// attempt's counters never reach the main ledger).  The per-iteration
// averages surface as gbench custom counters; run_bench_suite.py lifts
// work_attempted / work_committed into the bench ledger, where
// bench_compare.py hard-gates them.
void BM_GuardedEngine_FaultRetry(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  const PowerLaw p(2.0);
  robust::GuardedNumericOptions opts;
  opts.base = bench_config();
  opts.alpha = 2.0;
  const bool metrics_were_enabled = obs::metrics_enabled();
  obs::set_metrics_enabled(true);
  obs::Counter& attempted = obs::registry().counter("robust.work.attempted_units");
  obs::Counter& committed = obs::registry().counter("robust.work.committed_units");
  const std::int64_t attempted0 = attempted.value();
  const std::int64_t committed0 = committed.value();
  for (auto _ : state) {
    // Reinstalled per iteration: install() resets the site call counters, so
    // the fault fires at the same substep index every time.
    robust::ScopedFaultPlan plan(
        robust::FaultPlan{}.fire(robust::FaultSite::kOdeSubstepNaN, {100}));
    benchmark::DoNotOptimize(robust::run_generic_c_guarded(inst, p, opts));
  }
  const double iters = static_cast<double>(state.iterations());
  state.counters["work_attempted"] =
      benchmark::Counter(static_cast<double>(attempted.value() - attempted0) / iters);
  state.counters["work_committed"] =
      benchmark::Counter(static_cast<double>(committed.value() - committed0) / iters);
  obs::set_metrics_enabled(metrics_were_enabled);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_GuardedEngine_FaultRetry)->Arg(8);

// The checker pass in isolation, on a reusable run.
void BM_InvariantChecker(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  const PowerLaw p(2.0);
  const SampledRun run = run_generic_c(inst, p, bench_config());
  robust::InvariantOptions opts;
  opts.kind = robust::RunKind::kAlgorithmC;
  for (auto _ : state) {
    benchmark::DoNotOptimize(robust::check_sampled_run(inst, run, opts));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(run.t.size()));
}
BENCHMARK(BM_InvariantChecker)->Arg(8)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
