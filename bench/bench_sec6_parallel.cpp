// E6 — Theorem 17 / Lemmas 19-22: NC-PAR on identical parallel machines.
//
// Verifies the assignment equality with C-PAR, the exact energy and flow
// identities, and sweeps machines x alpha to show the measured competitive
// behaviour (vs the clairvoyant C-PAR reference, whose own guarantee is
// O(alpha) by Theorem 18).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/algo/bounds.h"
#include "src/algo/parallel.h"
#include "src/analysis/table.h"
#include "src/numerics/stats.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E6 / Theorem 17 — NC-PAR vs C-PAR on k identical machines\n");
  std::printf("(uniform density, Poisson arrivals, 40 jobs, 12 seeds per cell)\n\n");

  // Since energy == flow for C-PAR, the objective ratio is exactly
  // (1 + 1/(1-1/alpha)) / 2 — a consequence of Lemmas 21 and 22.
  Table t({"alpha", "k", "assign match", "max energy gap", "flow ratio err",
           "NC-PAR/C-PAR (frac)", "(1+1/(1-1/a))/2 expected"});
  for (double alpha : {1.5, 2.0, 3.0}) {
    for (int k : {2, 4, 8}) {
      bool all_match = true;
      numerics::RunningStats e_gap, f_err, obj_ratio;
      for (int seed = 1; seed <= 12; ++seed) {
        const Instance inst = workload::generate({.n_jobs = 40,
                                                  .arrival_rate = 3.0,
                                                  .seed = static_cast<std::uint64_t>(seed)});
        const ParallelRun c = run_c_par(inst, alpha, k);
        const ParallelRun nc = run_nc_par(inst, alpha, k);
        for (std::size_t j = 0; j < inst.size(); ++j) {
          if (c.assignment[j] != nc.assignment[j]) all_match = false;
        }
        e_gap.add(std::abs(nc.metrics.energy - c.metrics.energy) /
                  std::max(1e-300, c.metrics.energy));
        f_err.add(std::abs(nc.metrics.fractional_flow / c.metrics.fractional_flow -
                           bounds::nc_over_c_flow(alpha)));
        obj_ratio.add(nc.metrics.fractional_objective() / c.metrics.fractional_objective());
      }
      t.add_row({Table::cell(alpha), Table::cell(static_cast<long>(k)),
                 all_match ? "yes [Lem 20]" : "NO", Table::cell(e_gap.max(), 3),
                 Table::cell(f_err.max(), 3), Table::cell(obj_ratio.mean()),
                 Table::cell(0.5 * (1.0 + bounds::nc_over_c_flow(alpha)))});
    }
  }
  t.print(std::cout);

  std::printf("\nScaling with machine count (alpha = 2, one bursty workload):\n\n");
  Table t2({"k", "C-PAR frac objective", "NC-PAR frac objective", "NC-PAR integral"});
  const Instance inst = workload::generate({.n_jobs = 64, .arrival_rate = 6.0, .seed = 5});
  for (int k : {1, 2, 4, 8, 16}) {
    const ParallelRun c = run_c_par(inst, 2.0, k);
    const ParallelRun nc = run_nc_par(inst, 2.0, k);
    t2.add_row({Table::cell(static_cast<long>(k)), Table::cell(c.metrics.fractional_objective()),
                Table::cell(nc.metrics.fractional_objective()),
                Table::cell(nc.metrics.integral_objective())});
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: assignments always match (Lemma 20); energy gaps and\n");
  std::printf("flow-ratio errors ~ 1e-12 (Lemmas 21/22); objectives fall as k grows.\n");
  return 0;
}
