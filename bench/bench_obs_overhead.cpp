// E19 — observability overhead (google-benchmark).
//
// The tracing/metrics subsystem promises near-zero cost when disabled: a
// TRACE_EVENT site is one relaxed atomic load, an OBS_COUNT site one relaxed
// load plus a branch.  This bench measures the same hot loops as bench_perf
// (BM_AlgorithmC / BM_AlgorithmNCUniform) in three configurations —
// observability disabled, metrics-only, and full tracing into a ring buffer —
// so the disabled rows can be compared against the seed bench_perf numbers
// (<2% is the budget; measured numbers live in EXPERIMENTS.md).
//
// E23 adds the live telemetry plane: _SampledHub runs the same NC-uniform
// loop with a TelemetryHub sampler thread scraping the registry every 10 ms
// (vs _MetricsOnly = same loop, no sampler; the <2% budget in ISSUE 6), and
// BM_TelemetrySampleTick / BM_PrometheusExposition price one sample and one
// scrape so the period can be chosen from data.
#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/obs/live/telemetry_hub.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/workload/generators.h"

using namespace speedscale;

namespace {

Instance make_uniform(int n, std::uint64_t seed = 1) {
  return workload::generate({.n_jobs = n, .arrival_rate = 2.0, .seed = seed});
}

void BM_AlgorithmC_ObsDisabled(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  obs::set_observability_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm_c(inst, 2.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmC_ObsDisabled)->Arg(1024)->Arg(4096);

void BM_AlgorithmC_MetricsOnly(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  obs::set_metrics_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm_c(inst, 2.0));
  }
  obs::set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmC_MetricsOnly)->Arg(1024)->Arg(4096);

void BM_AlgorithmC_FullTrace(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  auto ring = std::make_shared<obs::RingBufferSink>();
  obs::ScopedTracing tracing(ring);
  obs::set_metrics_enabled(true);
  for (auto _ : state) {
    ring->clear();
    benchmark::DoNotOptimize(run_algorithm_c(inst, 2.0));
  }
  obs::set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmC_FullTrace)->Arg(1024)->Arg(4096);

void BM_AlgorithmNCUniform_ObsDisabled(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  obs::set_observability_enabled(false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_nc_uniform(inst, 2.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmNCUniform_ObsDisabled)->Arg(1024)->Arg(4096);

void BM_AlgorithmNCUniform_MetricsOnly(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  obs::set_metrics_enabled(true);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_nc_uniform(inst, 2.0));
  }
  obs::set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmNCUniform_MetricsOnly)->Arg(1024)->Arg(4096);

void BM_AlgorithmNCUniform_FullTrace(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  auto ring = std::make_shared<obs::RingBufferSink>();
  obs::ScopedTracing tracing(ring);
  obs::set_metrics_enabled(true);
  for (auto _ : state) {
    ring->clear();
    benchmark::DoNotOptimize(run_nc_uniform(inst, 2.0));
  }
  obs::set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmNCUniform_FullTrace)->Arg(1024)->Arg(4096);

// The _MetricsOnly loop with a live TelemetryHub sampling the registry at a
// 10 ms period (aggressive vs the 250 ms default) on its own thread.  The
// delta vs BM_AlgorithmNCUniform_MetricsOnly is the whole sampler tax on the
// simulation hot path; the <2% budget is asserted in EXPERIMENTS.md E23.
void BM_AlgorithmNCUniform_SampledHub(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  obs::set_metrics_enabled(true);
  obs::live::TelemetryOptions topts;
  topts.period = std::chrono::milliseconds(10);
  topts.publish_sweep_gauges = false;
  obs::live::TelemetryHub hub(topts);
  hub.start();
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_nc_uniform(inst, 2.0));
  }
  hub.stop();
  obs::set_metrics_enabled(false);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmNCUniform_SampledHub)->Arg(1024)->Arg(4096);

// One hub sample tick in isolation: snapshot the whole registry (as
// populated by a realistic run), push rings, update rates/quantiles.  This
// is the work the sampler thread does once per period.
void BM_TelemetrySampleTick(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  (void)run_nc_uniform(make_uniform(1024), 2.0);  // populate the registry
  obs::live::TelemetryOptions topts;
  topts.publish_sweep_gauges = false;
  obs::live::TelemetryHub hub(topts);
  for (auto _ : state) {
    hub.sample_now();
  }
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_TelemetrySampleTick);

// One /metrics scrape body render (registry snapshot -> Prometheus text).
void BM_PrometheusExposition(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  (void)run_nc_uniform(make_uniform(1024), 2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(obs::live::prometheus_exposition());
  }
  obs::set_metrics_enabled(false);
}
BENCHMARK(BM_PrometheusExposition);

// The raw cost of a dormant site, isolated: one TRACE_EVENT and one
// OBS_COUNT in a loop with tracing and metrics off.  Expect ~1 ns/iter.
void BM_DisabledSiteCost(benchmark::State& state) {
  obs::set_observability_enabled(false);
  double x = 0.0;
  for (auto _ : state) {
    TRACE_EVENT(.kind = obs::EventKind::kSpeedChange, .t = x, .value = x);
    OBS_COUNT("bench.disabled_site", 1);
    x += 1.0;
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_DisabledSiteCost);

}  // namespace

BENCHMARK_MAIN();
