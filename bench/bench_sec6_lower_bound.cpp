// E5 — Section 6 lower bound: immediate dispatch costs Omega(k^{1-1/alpha}).
//
// The adversary releases k^2 observationally-identical jobs at time 0; after
// any deterministic dispatch, it makes k jobs on the most-loaded machine
// heavy.  We sweep k and alpha, print the measured ratio against the exact
// prediction k^{1-1/alpha}, and fit the growth exponent.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/bounds.h"
#include "src/algo/dispatch.h"
#include "src/analysis/ascii_chart.h"
#include "src/analysis/table.h"
#include "src/numerics/stats.h"

using namespace speedscale;
using analysis::Series;
using analysis::Table;

int main() {
  std::printf("E5 / Section 6 — immediate-dispatch lower bound Omega(k^{1-1/alpha})\n\n");

  for (DispatchPolicy policy :
       {DispatchPolicy::kRoundRobin, DispatchPolicy::kLeastCount, DispatchPolicy::kFirstFit}) {
    const char* name = policy == DispatchPolicy::kRoundRobin  ? "round-robin"
                       : policy == DispatchPolicy::kLeastCount ? "least-count"
                                                                : "first-fit";
    std::printf("dispatch policy: %s\n", name);
    Table t({"alpha", "k", "algo cost", "spread cost", "ratio", "k^{1-1/a}", "fitted exp",
             "1-1/a"});
    for (double alpha : {1.5, 2.0, 3.0}) {
      std::vector<double> ks, ratios;
      for (int k : {2, 4, 8, 16, 24}) {
        const AdversaryOutcome out = run_sec6_adversary(k, alpha, policy);
        ks.push_back(k);
        ratios.push_back(out.ratio);
        t.add_row({Table::cell(alpha), Table::cell(static_cast<long>(k)),
                   Table::cell(out.algo_cost), Table::cell(out.opt_cost),
                   Table::cell(out.ratio),
                   Table::cell(std::pow(static_cast<double>(k), 1.0 - 1.0 / alpha)),
                   ks.size() == 5 ? Table::cell(numerics::fit_log_log_slope(ks, ratios), 4)
                                  : std::string(""),
                   ks.size() == 5 ? Table::cell(bounds::lower_bound_exponent(alpha), 4)
                                  : std::string("")});
      }
    }
    t.print(std::cout);
    std::printf("\n");
  }

  // The shape, as a log-log-ish chart for alpha = 2.
  Series measured{"measured ratio (alpha=2, round-robin)", {}, {}, '*'};
  Series theory{"k^{1/2}", {}, {}, '.'};
  for (int k = 2; k <= 32; k += 2) {
    const AdversaryOutcome out = run_sec6_adversary(k, 2.0, DispatchPolicy::kRoundRobin);
    measured.x.push_back(k);
    measured.y.push_back(out.ratio);
    theory.x.push_back(k);
    theory.y.push_back(std::sqrt(static_cast<double>(k)));
  }
  analysis::plot(std::cout, {measured, theory}, 72, 16, "lower-bound growth");
  std::printf("\nExpected shape: ratio curves lie on k^{1-1/alpha} for every\n");
  std::printf("deterministic policy — no dispatcher can load-balance what it cannot see.\n");
  return 0;
}
