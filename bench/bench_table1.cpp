// E1 — Table 1 of the paper: competitive-ratio summary.
//
// For each alpha, run the algorithm suite over a batch of random instances
// and report the worst measured ratio against the numerical fractional OPT,
// next to the paper's proven guarantee.  The clairvoyant rows (C) and the
// known-weight non-clairvoyant row (ActiveCount processor sharing) provide
// the context columns of the paper's table; the NC rows are this paper's
// contribution.  Exact lemma-level identities (energy equality, flow ratio)
// are also printed so the table doubles as a correctness readout.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <mutex>
#include <vector>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/algo/bounds.h"
#include "src/algo/frac_to_int.h"
#include "src/analysis/table.h"
#include "src/analysis/thread_pool.h"
#include "src/numerics/stats.h"
#include "src/opt/convex_opt.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Table;

namespace {

struct Ratios {
  numerics::RunningStats c_frac, nc_frac, nc_int, nc_red_int, ps_frac, ncn_frac;
  numerics::RunningStats energy_gap, flow_ratio_err;
};

void run_alpha(double alpha, int n_seeds, Ratios& r, std::mutex& mu) {
  analysis::ThreadPool pool;
  analysis::parallel_for(pool, static_cast<std::size_t>(n_seeds), [&](std::size_t seed) {
    const Instance inst = workload::generate({.n_jobs = 14,
                                              .arrival_rate = 1.5,
                                              .volume_dist = workload::VolumeDist::kExponential,
                                              .seed = seed + 1});
    const ConvexOptResult opt = solve_fractional_opt(inst, alpha, {.slots = 500, .max_iters = 3000});
    if (opt.objective <= 0.0) return;

    const RunResult c = run_c(inst, alpha);
    const RunResult nc = run_nc_uniform(inst, alpha);
    const IntReductionRun red = reduce_frac_to_int(inst, nc.schedule, 0.5);
    const SharedRun ps = run_active_count(inst, alpha);
    const NCNonUniformRun ncn = run_nc_nonuniform(inst, alpha);

    std::lock_guard<std::mutex> lk(mu);
    r.c_frac.add(c.metrics.fractional_objective() / opt.objective);
    r.nc_frac.add(nc.metrics.fractional_objective() / opt.objective);
    r.nc_int.add(nc.metrics.integral_objective() / opt.objective);
    r.nc_red_int.add(red.integral_objective() / opt.objective);
    r.ps_frac.add(ps.metrics.fractional_objective() / opt.objective);
    r.ncn_frac.add(ncn.result.metrics.fractional_objective() / opt.objective);
    r.energy_gap.add(std::abs(nc.metrics.energy - c.metrics.energy) /
                     std::max(1e-300, c.metrics.energy));
    r.flow_ratio_err.add(std::abs(nc.metrics.fractional_flow /
                                      std::max(1e-300, c.metrics.fractional_flow) -
                                  bounds::nc_over_c_flow(alpha)));
  });
}

}  // namespace

int main() {
  std::printf("E1 / Table 1 — competitive ratios vs numerical fractional OPT\n");
  std::printf("(uniform-density Poisson/exponential workloads, 14 jobs, 24 seeds per alpha;\n");
  std::printf(" integral-objective ratios use fractional OPT, i.e. they are upper bounds)\n\n");

  const int n_seeds = 24;
  for (double alpha : {1.5, 2.0, 2.5, 3.0}) {
    Ratios r;
    std::mutex mu;
    run_alpha(alpha, n_seeds, r, mu);

    std::printf("alpha = %.2f\n", alpha);
    Table t({"algorithm", "objective", "ratio mean", "ratio max", "paper bound"});
    t.add_row({"C (clairvoyant HDF, P=W)", "fractional", Table::cell(r.c_frac.mean()),
               Table::cell(r.c_frac.max()), "2 [Thm 1]"});
    t.add_row({"NC (uniform density)", "fractional", Table::cell(r.nc_frac.mean()),
               Table::cell(r.nc_frac.max()),
               Table::cell(bounds::nc_uniform_fractional(alpha)) + " [Thm 5]"});
    t.add_row({"NC (uniform density)", "integral", Table::cell(r.nc_int.mean()),
               Table::cell(r.nc_int.max()),
               Table::cell(bounds::nc_uniform_integral(alpha)) + " [Thm 9]"});
    t.add_row({"NC + Lem 15 reduction (eps=0.5)", "integral", Table::cell(r.nc_red_int.mean()),
               Table::cell(r.nc_red_int.max()),
               Table::cell(bounds::reduction_factor(alpha, 0.5) *
                           bounds::nc_uniform_fractional(alpha)) +
                   " [Thm 16]"});
    t.add_row({"NC (non-uniform machinery)", "fractional", Table::cell(r.ncn_frac.mean()),
               Table::cell(r.ncn_frac.max()), "2^O(alpha) [Sec 4]"});
    t.add_row({"ActiveCount PS (known-weight NC)", "fractional", Table::cell(r.ps_frac.mean()),
               Table::cell(r.ps_frac.max()), "2a^2/ln a (integral) [11]"});
    t.print(std::cout);
    std::printf("exact identities: max |energy(NC)-energy(C)|/energy(C) = %.3g;  "
                "max |flow ratio - 1/(1-1/a)| = %.3g\n\n",
                r.energy_gap.max(), r.flow_ratio_err.max());
  }
  std::printf("Expected shape: every measured max <= its paper bound; C is well under 2;\n");
  std::printf("NC pays exactly the 1/(1-1/alpha) flow premium over C and nothing else.\n");
  return 0;
}
