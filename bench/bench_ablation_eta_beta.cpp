// E10 — Section 4 parameter study: the speed multiplier eta and the density
// rounding base beta.
//
// The paper defers the concrete constants to its full version.  This bench
// maps them empirically:
//  * eta: there is a sharp phase transition at eta_min(alpha) =
//    (alpha/(alpha-1)) * alpha^{1/(alpha-1)} — below it the self-referential
//    speed rule never takes off (cost ~ 1/epsilon), above it the ratio is a
//    mild constant that grows like eta^alpha for large eta.  So the paper's
//    "constant eta" lives in a U-shaped valley starting at eta_min.
//  * beta: the analysis wants beta > 4; we sweep beta and show the measured
//    ratio is flat-ish in beta (the rounding loses at most a beta factor of
//    weight, but buys the bin-charging argument).
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/analysis/ascii_chart.h"
#include "src/analysis/table.h"
#include "src/numerics/stats.h"
#include "src/workload/generators.h"

using namespace speedscale;
using analysis::Series;
using analysis::Table;

namespace {

double mean_ratio(double alpha, const NCNonUniformParams& params, int seeds) {
  numerics::RunningStats r;
  for (int seed = 1; seed <= seeds; ++seed) {
    const Instance inst = workload::generate({.n_jobs = 10,
                                              .arrival_rate = 1.0,
                                              .density_mode = workload::DensityMode::kClasses,
                                              .density_classes = 3,
                                              .density_spread = 25.0,
                                              .seed = static_cast<std::uint64_t>(seed)});
    const NCNonUniformRun nc = run_nc_nonuniform(inst, alpha, params);
    const RunResult c = run_c(inst, alpha);
    r.add(nc.result.metrics.fractional_objective() / c.metrics.fractional_objective());
  }
  return r.mean();
}

}  // namespace

int main() {
  std::printf("E10 — eta / beta parameter maps for non-uniform Algorithm NC\n\n");

  std::printf("eta sweep (ratio vs clairvoyant C; single job, then mixed workloads):\n");
  std::printf("eta_min(1.5) = %.3f, eta_min(2) = %.3f, eta_min(3) = %.3f\n\n",
              nc_eta_min(1.5), nc_eta_min(2.0), nc_eta_min(3.0));

  Table t({"alpha", "eta/eta_min", "eta", "mean ratio vs C"});
  Series curve2{"alpha=2 ratio vs eta/eta_min", {}, {}, '*'};
  for (double alpha : {2.0, 3.0}) {
    for (double f : {0.8, 0.95, 1.05, 1.2, 1.5, 2.0, 3.0}) {
      NCNonUniformParams p;
      p.eta = f * nc_eta_min(alpha);
      const double r = mean_ratio(alpha, p, 4);
      t.add_row({Table::cell(alpha), Table::cell(f), Table::cell(p.eta), Table::cell(r)});
      if (alpha == 2.0) {
        curve2.x.push_back(f);
        curve2.y.push_back(std::min(r, 100.0));  // clip the crawl branch for display
      }
    }
  }
  t.print(std::cout);
  std::printf("\n");
  analysis::plot(std::cout, {curve2}, 72, 14,
                 "phase transition at eta/eta_min = 1 (ratio clipped at 100)");

  std::printf("\nbeta sweep (eta auto = 1.5*eta_min; alpha = 2):\n\n");
  Table t2({"beta", "mean ratio vs C"});
  for (double beta : {1.5, 2.0, 3.0, 4.5, 6.0, 10.0}) {
    NCNonUniformParams p;
    p.beta = beta;
    t2.add_row({Table::cell(beta), Table::cell(mean_ratio(2.0, p, 4))});
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: ratios explode below eta_min, drop into a valley just\n");
  std::printf("above it, then grow ~eta^alpha; beta dependence is mild around the\n");
  std::printf("paper's beta > 4 regime.\n");
  return 0;
}
