// E7 — Section 7's "somewhat surprising fact": l jobs with geometric
// densities 1, rho, ..., rho^{l-1} (rho >= 4), each of solo cost c, cost at
// most 4*l*c on a SINGLE machine — so failing to load-balance across
// densities costs only a constant factor, unlike the uniform-density case
// (E5), where it costs k^{1-1/alpha}.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "src/algo/algorithm_c.h"
#include "src/analysis/table.h"
#include "src/workload/adversarial.h"

using namespace speedscale;
using analysis::Table;

int main() {
  std::printf("E7 / Section 7 — geometric densities on one machine cost <= 4*l*c\n\n");
  const double solo = 1.0;

  Table t({"alpha", "rho", "l", "one-machine cost", "l machines (= l*c)", "cost/(l*c)",
           "paper bound"});
  for (double alpha : {2.0, 3.0}) {
    for (double rho : {4.0, 8.0}) {
      for (int l : {2, 4, 8, 16}) {
        const Instance inst = workload::geometric_density_instance(l, rho, solo, alpha);
        const RunResult c = run_c(inst, alpha);
        const double one_machine = c.metrics.fractional_objective();
        t.add_row({Table::cell(alpha), Table::cell(rho), Table::cell(static_cast<long>(l)),
                   Table::cell(one_machine), Table::cell(l * solo),
                   Table::cell(one_machine / (l * solo)), "4"});
      }
    }
  }
  t.print(std::cout);

  std::printf("\nContrast: rho close to 1 (near-uniform densities) re-creates the\n");
  std::printf("super-constant stacking penalty of Section 6:\n\n");
  Table t2({"alpha", "rho", "l", "cost/(l*c)"});
  for (double rho : {1.01, 1.5, 2.0, 4.0}) {
    for (int l : {4, 16}) {
      const Instance inst = workload::geometric_density_instance(l, rho, solo, 2.0);
      const RunResult c = run_c(inst, 2.0);
      t2.add_row({Table::cell(2.0), Table::cell(rho), Table::cell(static_cast<long>(l)),
                  Table::cell(c.metrics.fractional_objective() / (l * solo))});
    }
  }
  t2.print(std::cout);
  std::printf("\nExpected shape: for rho >= 4 the normalized cost stays below 4 at every l;\n");
  std::printf("as rho -> 1 it grows with l (approaching the l^{1-1/alpha} uniform penalty).\n");
  return 0;
}
