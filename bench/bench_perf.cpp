// E13 — engine performance (google-benchmark).
//
// Event throughput of the exact simulators, scaling in job count, the cost
// of the non-uniform algorithm's inner C re-simulations, and thread-pool
// sweep scaling.
#include <benchmark/benchmark.h>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/parallel.h"
#include "src/analysis/thread_pool.h"
#include "src/opt/convex_opt.h"
#include "src/workload/generators.h"

using namespace speedscale;

namespace {

Instance make_uniform(int n, std::uint64_t seed = 1) {
  return workload::generate({.n_jobs = n, .arrival_rate = 2.0, .seed = seed});
}

void BM_AlgorithmC(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_algorithm_c(inst, 2.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmC)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_AlgorithmNCUniform(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_nc_uniform(inst, 2.0));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AlgorithmNCUniform)->Arg(16)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_MetricsReplay(benchmark::State& state) {
  const Instance inst = make_uniform(static_cast<int>(state.range(0)));
  const Schedule sched = run_algorithm_c(inst, 2.0);
  const PowerLaw p(2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compute_metrics(inst, sched, p));
  }
}
BENCHMARK(BM_MetricsReplay)->Arg(16)->Arg(64)->Arg(256);

void BM_NCNonUniform(benchmark::State& state) {
  const Instance inst = workload::generate({.n_jobs = static_cast<int>(state.range(0)),
                                            .density_mode = workload::DensityMode::kClasses,
                                            .seed = 2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_nc_nonuniform(inst, 2.0));
  }
}
BENCHMARK(BM_NCNonUniform)->Arg(4)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_NCPar(benchmark::State& state) {
  const Instance inst = make_uniform(512);
  for (auto _ : state) {
    benchmark::DoNotOptimize(run_nc_par(inst, 2.0, static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_NCPar)->Arg(2)->Arg(8)->Arg(32);

void BM_ConvexOpt(benchmark::State& state) {
  const Instance inst = make_uniform(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve_fractional_opt(inst, 2.0, {.slots = static_cast<int>(state.range(0)),
                                         .max_iters = 500}));
  }
}
BENCHMARK(BM_ConvexOpt)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_SweepThreads(benchmark::State& state) {
  const std::size_t n_threads = static_cast<std::size_t>(state.range(0));
  // Pre-generate chunky instances so the measured region is pure simulation.
  std::vector<Instance> instances;
  for (std::size_t i = 0; i < 32; ++i) instances.push_back(make_uniform(1024, i + 1));
  analysis::ThreadPool pool(n_threads);
  for (auto _ : state) {
    std::vector<double> out(instances.size());
    analysis::parallel_for(pool, out.size(), [&](std::size_t i) {
      out[i] = run_nc_uniform(instances[i], 2.0).metrics.fractional_objective();
    });
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_SweepThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
