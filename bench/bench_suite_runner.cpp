// Bench suite runner: the pinned, deterministic half of the bench ledger.
//
// Runs the fixed workload set of src/analysis/pinned_suite.h — pinned seeds
// and configurations — `--reps` times each, and emits a
// speedscale.bench_ledger/1 JSON document (src/obs/perf/bench_ledger.h):
//
//   * per repetition, the wall time of the workload body;
//   * per workload, the MetricsRegistry counter snapshot it produced — ODE
//     substeps, root-solver iterations, bracket expansions, retry-ladder
//     rungs, preemptions, segments.  The simulators are exact, so these are
//     deterministic per seed; the runner *asserts* every repetition
//     reproduces the first one's counters and fails loudly otherwise.
//
// scripts/run_bench_suite.py wraps this binary, merges the google-benchmark
// wall-time suites (E13/E19/E20) into the same ledger, and writes the
// committed artifact (BENCH_PR3.json).  scripts/bench_compare.py is the
// regression gate over two such ledgers.
//
// Execution backends for the (bench x repetition) grid:
//
//   --jobs N   shards across the in-process sweep scheduler
//              (src/analysis/sweep.h) — each repetition runs inside its own
//              metrics shard, so its counter snapshot is exactly what the
//              body recorded no matter which worker ran it;
//   --fleet N  shards across N supervised worker *processes*
//              (src/robust/supervisor/supervisor.h): workers checkpoint
//              every repetition to per-shard JSONL logs, crashed or hung
//              workers are restarted from their last valid line, and the
//              merged ledger is byte-identical to --jobs 1 — the crash-
//              tolerance contract the chaos harness asserts.  SIGTERM/SIGINT
//              stop the fleet cleanly (exit 75); rerunning with the same
//              --fleet-dir resumes instead of recomputing.
//
// --balance HISTORY.jsonl (fleet only) prices every item from a
// speedscale.history/1 trajectory's cost records (src/obs/history/) and
// replaces the static i%N sharding with a deterministic LPT plan computed
// before any worker spawns.  Balancing changes which shard computes an
// item, never what it computes: the merged ledger stays byte-identical.
//
// Usage:
//   bench_suite_runner [--out ledger.json] [--reps N] [--quick] [--jobs N]
//                      [--filter SUBSTR] [--exclude SUBSTR] [--list]
//                      [--suite NAME] [--fleet N] [--fleet-dir DIR]
//                      [--worker PATH] [--metrics-out FILE] [--state-file FILE]
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/pinned_suite.h"
#include "src/analysis/sweep.h"
#include "src/obs/build_info.h"
#include "src/obs/history/cost_model.h"
#include "src/obs/history/history_store.h"
#include "src/obs/live/telemetry_hub.h"
#include "src/obs/live/telemetry_server.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/perf/bench_ledger.h"
#include "src/robust/atomic_io.h"
#include "src/robust/supervisor/supervisor.h"

using namespace speedscale;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

/// Zero-valued names filtered out of a shard's counter delta: a shard scope
/// records OBS_COUNT(name, 0) as an explicit 0 entry, but the ledger pins
/// the counters a workload actually *produced* (matching the registry's
/// historical nonzero-snapshot semantics).
std::map<std::string, std::int64_t> nonzero(const std::map<std::string, std::int64_t>& delta) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, v] : delta) {
    if (v != 0) out[name] = v;
  }
  return out;
}

/// Default sweep_worker location: sibling "examples" directory of this
/// binary's "bench" directory (the build-tree layout).
std::string default_worker_path(const char* argv0) {
  const std::string self(argv0);
  const std::size_t slash = self.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : self.substr(0, slash);
  return dir + "/../examples/sweep_worker";
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_suite_runner [--out ledger.json] [--reps N] [--quick]\n"
               "                          [--jobs N] [--filter SUBSTR] [--exclude SUBSTR]\n"
               "                          [--list] [--suite NAME]\n"
               "                          [--fleet N] [--fleet-dir DIR] [--worker PATH]\n"
               "                          [--metrics-out FILE] [--state-file FILE]\n"
               "                          [--run-id ID] [--no-fleet-obs] [--fleet-report]\n"
               "                          [--fleet-trace FILE] [--fleet-log FILE]\n"
               "                          [--balance HISTORY.jsonl]\n"
               "                          [--serve-metrics [BIND]] [--port-file FILE]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, suite_name = "pr3-pinned";
  std::string fleet_dir = "fleet_work", worker_path, metrics_out, state_file;
  std::string run_id, fleet_trace, fleet_log, serve_bind, port_file, balance_path;
  std::vector<std::string> filters, excludes;  // repeatable; substring match
  int reps = 5;
  std::size_t jobs = 1, fleet = 0;
  bool quick = false, list = false;
  bool fleet_obs = true, fleet_report = false, serve_metrics = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--fleet" && i + 1 < argc) {
      fleet = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--fleet-dir" && i + 1 < argc) {
      fleet_dir = argv[++i];
    } else if (arg == "--worker" && i + 1 < argc) {
      worker_path = argv[++i];
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (arg == "--state-file" && i + 1 < argc) {
      state_file = argv[++i];
    } else if (arg == "--run-id" && i + 1 < argc) {
      run_id = argv[++i];
    } else if (arg == "--no-fleet-obs") {
      fleet_obs = false;
    } else if (arg == "--fleet-report") {
      fleet_report = true;
    } else if (arg == "--fleet-trace" && i + 1 < argc) {
      fleet_trace = argv[++i];
    } else if (arg == "--fleet-log" && i + 1 < argc) {
      fleet_log = argv[++i];
    } else if (arg == "--balance" && i + 1 < argc) {
      balance_path = argv[++i];
    } else if (arg == "--serve-metrics" && i + 1 < argc) {
      serve_metrics = true;
      serve_bind = argv[++i];
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--filter" && i + 1 < argc) {
      filters.emplace_back(argv[++i]);
    } else if (arg == "--exclude" && i + 1 < argc) {
      excludes.emplace_back(argv[++i]);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--suite" && i + 1 < argc) {
      suite_name = argv[++i];
    } else {
      return usage();
    }
  }
  if (quick) reps = std::min(reps, 2);
  if (reps < 1) return usage();

  const std::vector<analysis::PinnedBench>& suite = analysis::pinned_bench_suite();
  if (list) {
    for (const analysis::PinnedBench& b : suite) std::printf("%s\n", b.name.c_str());
    return 0;
  }

  std::vector<const analysis::PinnedBench*> selected;
  for (const analysis::PinnedBench& b : suite) {
    const auto matches = [&b](const std::string& s) {
      return b.name.find(s) != std::string::npos;
    };
    if (!filters.empty() && std::none_of(filters.begin(), filters.end(), matches)) continue;
    if (std::any_of(excludes.begin(), excludes.end(), matches)) continue;
    selected.push_back(&b);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no pinned bench matches the --filter/--exclude selection\n");
    return 2;
  }

  obs::perf::BenchLedger ledger(suite_name);
  ledger.set_config("alpha", "2");
  // Build identity (src/obs/build_info.h) travels with every ledger so a
  // regression report names the exact binary.  bench_compare.py ignores
  // config, so committed baselines predating these keys stay comparable.
  ledger.set_config("build_type", obs::build_info().build_type);
  ledger.set_config("compiler", obs::build_info().compiler);
  ledger.set_config("engine_substeps", std::to_string(analysis::kPinnedBenchEngineSubsteps));
  ledger.set_config("git_hash", obs::build_info().git_hash);
  ledger.set_config("mode", quick ? "quick" : "full");
  ledger.set_config("repetitions", std::to_string(reps));

  obs::set_metrics_enabled(true);
  obs::registry().reset_all();

  // The (bench x rep) grid, item idx = bench * reps + rep.  Each
  // repetition's counters are its shard delta — exactly what the body
  // recorded, wherever it ran — so the ledger does not depend on --jobs or
  // --fleet.  No outer OPT cache: memoizing across repetitions would make
  // rep 1 cheaper than rep 0 and trip the determinism check (workloads that
  // want caching install their own, e.g. the sweep-suite points).
  const std::size_t n_items = selected.size() * static_cast<std::size_t>(reps);
  std::vector<double> wall_ns(n_items, 0.0);
  std::vector<std::map<std::string, std::int64_t>> deltas;

  if (fleet > 0) {
    // Multi-process backend: a supervised crash-tolerant worker fleet.
    std::signal(SIGTERM, handle_signal);
    std::signal(SIGINT, handle_signal);
    robust::supervisor::FleetWorkSpec spec;
    spec.kind = robust::supervisor::FleetWorkKind::kPinnedBench;
    spec.shards = fleet;
    spec.opt_cache_capacity = 0;
    spec.bench_reps = reps;
    for (const analysis::PinnedBench* b : selected) spec.bench_names.push_back(b->name);
    if (!balance_path.empty()) {
      // Cost-model shard balancing (src/obs/history/cost_model.h): price
      // each item from the trajectory's cost records and assign items to
      // shards by deterministic LPT — all before any worker spawns, so the
      // plan is part of the spec and the merge stays byte-identical to
      // serial (docs/observability.md).
      obs::history::LoadStats hstats;
      const obs::history::HistoryStore history = obs::history::HistoryStore::load_file(
          balance_path, obs::history::LoadMode::kLenient, &hstats);
      history.publish_gauges(&hstats);
      const obs::history::CostModel model = obs::history::CostModel::fit(history);
      const obs::history::ShardPlan plan =
          obs::history::plan_assignment(model.costs(spec.n_items()), spec.shards);
      spec.assignment = plan.assignment;
      std::fprintf(stderr,
                   "[balance] %zu item(s), %zu with history (%s), moved %zu, expected "
                   "makespan %.3f ms (static %.3f ms)\n",
                   spec.n_items(), model.known_items(),
                   model.uniform() ? "uniform fallback" : "cost model", plan.moved_items,
                   plan.makespan, plan.static_makespan);
    }
    robust::supervisor::FleetOptions fopts;
    fopts.worker_binary = worker_path.empty() ? default_worker_path(argv[0]) : worker_path;
    fopts.work_dir = fleet_dir;
    fopts.state_path = state_file;
    fopts.stop_flag = &g_stop;
    fopts.obs.enabled = fleet_obs;
    fopts.obs.run_id = run_id;
    fopts.obs.trace_path = fleet_trace;
    fopts.obs.log_path = fleet_log;

    // Live roll-up (PR 8): with --serve-metrics the runner samples fleet.*
    // gauges into a TelemetryHub and serves /metrics mid-run — the scrape
    // surface the chaos smoke hits while workers are being killed.  The
    // hub reads counters and writes gauges only, so the ledger is
    // byte-identical with or without it.
    std::unique_ptr<obs::live::TelemetryHub> hub;
    std::unique_ptr<obs::live::TelemetryServer> server;
    if (serve_metrics) {
      hub = std::make_unique<obs::live::TelemetryHub>();
      hub->start();
      obs::live::TelemetryServerOptions sopts;
      sopts.bind = serve_bind;
      server = std::make_unique<obs::live::TelemetryServer>(*hub, sopts);
      try {
        server->start();
      } catch (const std::exception& e) {
        std::fprintf(stderr, "FATAL: cannot serve metrics: %s\n", e.what());
        return 1;
      }
      std::printf("serving telemetry at %s\n", server->address().c_str());
      std::fflush(stdout);
      if (!port_file.empty()) {
        robust::atomic_write_file(port_file,
                                  [&](std::ostream& os) { os << server->address() << '\n'; });
      }
    }

    robust::supervisor::Supervisor supervisor(std::move(spec), fopts);
    robust::supervisor::FleetResult result;
    try {
      result = supervisor.run();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "FATAL: fleet failed: %s\n", e.what());
      return 1;
    }
    if (server) server->stop();
    if (hub) hub->stop();
    if (!metrics_out.empty()) {
      std::ofstream mf(metrics_out);
      mf << obs::registry().snapshot_json() << '\n';
    }
    if (result.interrupted) {
      std::fprintf(stderr,
                   "fleet interrupted; shard logs in %s resume on the next run\n",
                   fleet_dir.c_str());
      return robust::supervisor::kWorkerExitInterrupted;
    }
    if (fleet_report && result.cost.items > 0) {
      std::fputs(result.cost.table().c_str(), stdout);
    }
    for (std::size_t idx = 0; idx < n_items; ++idx) {
      wall_ns[idx] = result.items[idx].wall_ns;
      deltas.push_back(result.items[idx].counters);
    }
  } else {
    analysis::SweepOptions sweep_options;
    sweep_options.jobs = jobs;
    sweep_options.opt_cache_capacity = 0;
    analysis::SweepScheduler scheduler(sweep_options);
    deltas = scheduler.run(n_items, [&](std::size_t idx) {
      const analysis::PinnedBench& b = *selected[idx / static_cast<std::size_t>(reps)];
      const auto t0 = std::chrono::steady_clock::now();
      b.body();
      const auto t1 = std::chrono::steady_clock::now();
      wall_ns[idx] = static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
    });
  }

  for (std::size_t bi = 0; bi < selected.size(); ++bi) {
    const analysis::PinnedBench& b = *selected[bi];
    obs::perf::BenchEntry& entry = ledger.entry(b.name);
    entry.source = "runner";
    entry.repetitions = reps;
    for (int rep = 0; rep < reps; ++rep) {
      const std::size_t idx = bi * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep);
      entry.wall_ns.push_back(wall_ns[idx]);
      std::map<std::string, std::int64_t> counters = nonzero(deltas[idx]);
      if (rep == 0) {
        entry.counters = std::move(counters);
      } else if (counters != entry.counters) {
        // The whole point of the ledger is that this never happens.
        std::fprintf(stderr,
                     "FATAL: %s: work counters differ between repetition 0 and %d — "
                     "the workload is not deterministic\n",
                     b.name.c_str(), rep);
        return 1;
      }
    }
    std::int64_t work = 0;
    for (const auto& [name, v] : entry.counters) work += v;
    std::printf("%-28s reps=%d  wall_med=%.3f ms  counters=%zu  total_work=%lld\n",
                b.name.c_str(), reps, entry.wall_median_ns() * 1e-6, entry.counters.size(),
                static_cast<long long>(work));
  }

  if (!out_path.empty()) {
    ledger.write_file(out_path);
    std::printf("ledger written to %s (%zu benches)\n", out_path.c_str(), selected.size());
  }
  return 0;
}
