// Bench suite runner: the pinned, deterministic half of the bench ledger.
//
// Runs a fixed set of simulator/engine/solver workloads with pinned seeds
// and configurations, `--reps` times each, and emits a
// speedscale.bench_ledger/1 JSON document (src/obs/perf/bench_ledger.h):
//
//   * per repetition, the wall time of the workload body;
//   * per workload, the MetricsRegistry counter snapshot it produced — ODE
//     substeps, root-solver iterations, bracket expansions, retry-ladder
//     rungs, preemptions, segments.  The simulators are exact, so these are
//     deterministic per seed; the runner *asserts* every repetition
//     reproduces the first one's counters and fails loudly otherwise.
//
// scripts/run_bench_suite.py wraps this binary, merges the google-benchmark
// wall-time suites (E13/E19/E20) into the same ledger, and writes the
// committed artifact (BENCH_PR3.json).  scripts/bench_compare.py is the
// regression gate over two such ledgers.
//
// The (bench x repetition) grid itself is sharded across the sweep
// scheduler (src/analysis/sweep.h): each repetition runs inside its own
// metrics shard, so its counter snapshot is exactly what the body recorded
// no matter which worker ran it or what ran beside it — the ledger is
// byte-identical for --jobs 1 and --jobs N.
//
// Usage:
//   bench_suite_runner [--out ledger.json] [--reps N] [--quick] [--jobs N]
//                      [--filter SUBSTR] [--exclude SUBSTR] [--list]
//                      [--suite NAME]
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/sweep.h"
#include "src/core/power.h"
#include "src/numerics/roots.h"
#include "src/obs/build_info.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/live/telemetry_hub.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/perf/bench_ledger.h"
#include "src/obs/trace.h"
#include "src/robust/guarded_engine.h"
#include "src/sim/numeric_engine.h"
#include "src/workload/generators.h"

using namespace speedscale;

namespace {

constexpr double kAlpha = 2.0;
constexpr int kEngineSubsteps = 512;

struct PinnedBench {
  const char* name;
  std::function<void()> body;
};

Instance make_uniform(int n, std::uint64_t seed, double rate = 2.0) {
  return workload::generate({.n_jobs = n, .arrival_rate = rate, .seed = seed});
}

NumericConfig engine_config() {
  NumericConfig cfg;
  cfg.substeps_per_interval = kEngineSubsteps;
  return cfg;
}

/// One sweep-suite workload: the full ratio-harness suite (with certificate
/// capture) over 8 pinned uniform instances, sharded across `jobs` inner
/// workers.  The /8x1 and /8x8 entries run the *same* points, so their
/// counter snapshots must be identical — the committed proof that the sweep
/// engine's parallelism is unobservable — while their wall times expose the
/// speedup (tracked in BENCH_PR5.json; wall is advisory in the gate).
void run_sweep_suite_bench(std::size_t jobs) {
  std::vector<analysis::SuitePoint> points;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    points.push_back({make_uniform(20, seed), kAlpha});
  }
  analysis::SuiteOptions suite;
  suite.include_nonuniform = false;
  suite.certify = true;
  suite.opt_slots = 200;
  analysis::SweepOptions sweep;
  sweep.jobs = jobs;
  (void)analysis::run_suite_sweep(points, suite, sweep);
}

/// The pinned suite.  Changing a seed, size, or config here invalidates the
/// committed baseline — regenerate BENCH_PR3.json in the same change.
std::vector<PinnedBench> pinned_suite() {
  return {
      {"sim.algorithm_c/1024",
       [] { (void)run_algorithm_c(make_uniform(1024, 1), kAlpha); }},
      {"sim.algorithm_c/4096",
       [] { (void)run_algorithm_c(make_uniform(4096, 1), kAlpha); }},
      {"sim.nc_uniform/1024", [] { (void)run_nc_uniform(make_uniform(1024, 1), kAlpha); }},
      {"sim.nc_nonuniform/8",
       [] {
         const Instance inst = workload::generate(
             {.n_jobs = 8, .density_mode = workload::DensityMode::kClasses, .seed = 2});
         (void)run_nc_nonuniform(inst, kAlpha);
       }},
      {"sim.preemption_burst/256",
       [] {
         // Bursty arrivals with mixed densities: later, denser jobs displace
         // the running one, so this pins the preemption counter.
         const Instance inst = workload::generate({.n_jobs = 256,
                                                   .arrival_rate = 4.0,
                                                   .density_mode = workload::DensityMode::kClasses,
                                                   .seed = 6});
         (void)run_algorithm_c(inst, kAlpha);
       }},
      {"engine.numeric_c/16",
       [] {
         const PowerLaw p(kAlpha);
         (void)run_generic_c(make_uniform(16, 3, 1.5), p, engine_config());
       }},
      {"engine.numeric_nc/12",
       [] {
         const PowerLaw p(kAlpha);
         (void)run_generic_nc_uniform(make_uniform(12, 4, 1.5), p, engine_config());
       }},
      {"robust.guarded_nc/8",
       [] {
         const PowerLaw p(kAlpha);
         robust::GuardedNumericOptions options;
         options.base.substeps_per_interval = 256;
         options.alpha = kAlpha;
         (void)robust::run_generic_nc_uniform_guarded(make_uniform(8, 5, 1.5), p, options);
       }},
      {"cert.nc_uniform/24",
       [] {
         // Certificate ledger over a captured NC run.  Single-job OPT mode:
         // closed-form, so obs.cert.records / obs.cert.opt_lb_updates are
         // deterministic work counters — the convex-solve mode would add
         // iteration counts that drift with solver tuning.  The capture is
         // thread-exclusive (ScopedThreadCapture): global ScopedTracing
         // would interleave sibling benches' events at --jobs > 1.
         obs::RingBufferSink ring(1 << 16);
         {
           obs::ScopedThreadCapture capture(&ring);
           (void)run_nc_uniform(make_uniform(24, 7), kAlpha);
         }
         obs::cert::CertOptions copts;
         copts.opt_lb = obs::cert::OptLbMode::kSingleJob;
         (void)obs::cert::certify_events(ring.events(), kAlpha, copts);
       }},
      {"numerics.roots/sweep",
       [] {
         // 48 bracketing root solves: pins brent/bisect iteration counts and
         // the geometric bracket-expansion tally.
         for (int k = 1; k <= 48; ++k) {
           const double target = static_cast<double>(k);
           (void)numerics::find_root_increasing(
               [target](double x) { return x * x * x - target; }, 0.0, 0.5, 1e-12);
         }
       }},
      {"live.nc_uniform_sampled/256",
       [] {
         // NC-uniform with the live telemetry sampler scraping the registry
         // at 1 ms (src/obs/live/).  The hub writes gauges only, so the
         // shard's counter delta must pin exactly the same work counters as
         // an unsampled run — the committed proof that live telemetry is
         // unobservable in the deterministic half of the ledger.
         obs::live::TelemetryOptions topts;
         topts.period = std::chrono::milliseconds(1);
         topts.publish_sweep_gauges = false;
         obs::live::TelemetryHub hub(topts);
         hub.start();
         (void)run_nc_uniform(make_uniform(256, 9), kAlpha);
         hub.stop();
       }},
      // The sweep-engine determinism pair: same 8-point suite grid at inner
      // jobs 1 and 8.  Identical counters (incl. opt.cache.hits/misses from
      // the per-point memoized OPT solves), different wall — the committed
      // speedup evidence.  Heavier than the rest; run_bench_suite.py keeps
      // them in their own ledger (--exclude / --filter analysis.sweep_suite).
      {"analysis.sweep_suite/8x1", [] { run_sweep_suite_bench(1); }},
      {"analysis.sweep_suite/8x8", [] { run_sweep_suite_bench(8); }},
  };
}

/// Zero-valued names filtered out of a shard's counter delta: a shard scope
/// records OBS_COUNT(name, 0) as an explicit 0 entry, but the ledger pins
/// the counters a workload actually *produced* (matching the registry's
/// historical nonzero-snapshot semantics).
std::map<std::string, std::int64_t> nonzero(const std::map<std::string, std::int64_t>& delta) {
  std::map<std::string, std::int64_t> out;
  for (const auto& [name, v] : delta) {
    if (v != 0) out[name] = v;
  }
  return out;
}

int usage() {
  std::fprintf(stderr,
               "usage: bench_suite_runner [--out ledger.json] [--reps N] [--quick]\n"
               "                          [--jobs N] [--filter SUBSTR] [--exclude SUBSTR]\n"
               "                          [--list] [--suite NAME]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, suite_name = "pr3-pinned";
  std::vector<std::string> filters, excludes;  // repeatable; substring match
  int reps = 5;
  std::size_t jobs = 1;
  bool quick = false, list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--quick") {
      quick = true;
    } else if (arg == "--filter" && i + 1 < argc) {
      filters.emplace_back(argv[++i]);
    } else if (arg == "--exclude" && i + 1 < argc) {
      excludes.emplace_back(argv[++i]);
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--suite" && i + 1 < argc) {
      suite_name = argv[++i];
    } else {
      return usage();
    }
  }
  if (quick) reps = std::min(reps, 2);
  if (reps < 1) return usage();

  const std::vector<PinnedBench> suite = pinned_suite();
  if (list) {
    for (const PinnedBench& b : suite) std::printf("%s\n", b.name);
    return 0;
  }

  std::vector<const PinnedBench*> selected;
  for (const PinnedBench& b : suite) {
    const std::string name(b.name);
    const auto matches = [&name](const std::string& s) {
      return name.find(s) != std::string::npos;
    };
    if (!filters.empty() && std::none_of(filters.begin(), filters.end(), matches)) continue;
    if (std::any_of(excludes.begin(), excludes.end(), matches)) continue;
    selected.push_back(&b);
  }
  if (selected.empty()) {
    std::fprintf(stderr, "no pinned bench matches the --filter/--exclude selection\n");
    return 2;
  }

  obs::perf::BenchLedger ledger(suite_name);
  ledger.set_config("alpha", "2");
  // Build identity (src/obs/build_info.h) travels with every ledger so a
  // regression report names the exact binary.  bench_compare.py ignores
  // config, so committed baselines predating these keys stay comparable.
  ledger.set_config("build_type", obs::build_info().build_type);
  ledger.set_config("compiler", obs::build_info().compiler);
  ledger.set_config("engine_substeps", std::to_string(kEngineSubsteps));
  ledger.set_config("git_hash", obs::build_info().git_hash);
  ledger.set_config("mode", quick ? "quick" : "full");
  ledger.set_config("repetitions", std::to_string(reps));

  obs::set_metrics_enabled(true);
  obs::registry().reset_all();

  // The (bench x rep) grid through the sweep scheduler.  Each repetition's
  // counters are its shard delta — exactly what the body recorded, wherever
  // it ran — so the ledger does not depend on --jobs.  No outer OPT cache:
  // memoizing across repetitions would make rep 1 cheaper than rep 0 and
  // trip the determinism check (workloads that want caching install their
  // own, e.g. the sweep-suite points).
  const std::size_t n_items = selected.size() * static_cast<std::size_t>(reps);
  std::vector<double> wall_ns(n_items, 0.0);
  analysis::SweepOptions sweep_options;
  sweep_options.jobs = jobs;
  sweep_options.opt_cache_capacity = 0;
  analysis::SweepScheduler scheduler(sweep_options);
  const auto deltas = scheduler.run(n_items, [&](std::size_t idx) {
    const PinnedBench& b = *selected[idx / static_cast<std::size_t>(reps)];
    const auto t0 = std::chrono::steady_clock::now();
    b.body();
    const auto t1 = std::chrono::steady_clock::now();
    wall_ns[idx] = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  });

  for (std::size_t bi = 0; bi < selected.size(); ++bi) {
    const PinnedBench& b = *selected[bi];
    obs::perf::BenchEntry& entry = ledger.entry(b.name);
    entry.source = "runner";
    entry.repetitions = reps;
    for (int rep = 0; rep < reps; ++rep) {
      const std::size_t idx = bi * static_cast<std::size_t>(reps) + static_cast<std::size_t>(rep);
      entry.wall_ns.push_back(wall_ns[idx]);
      std::map<std::string, std::int64_t> counters = nonzero(deltas[idx]);
      if (rep == 0) {
        entry.counters = std::move(counters);
      } else if (counters != entry.counters) {
        // The whole point of the ledger is that this never happens.
        std::fprintf(stderr,
                     "FATAL: %s: work counters differ between repetition 0 and %d — "
                     "the workload is not deterministic\n",
                     b.name, rep);
        return 1;
      }
    }
    std::int64_t work = 0;
    for (const auto& [name, v] : entry.counters) work += v;
    std::printf("%-28s reps=%d  wall_med=%.3f ms  counters=%zu  total_work=%lld\n", b.name,
                reps, entry.wall_median_ns() * 1e-6, entry.counters.size(),
                static_cast<long long>(work));
  }

  if (!out_path.empty()) {
    ledger.write_file(out_path);
    std::printf("ledger written to %s (%zu benches)\n", out_path.c_str(), selected.size());
  }
  return 0;
}
