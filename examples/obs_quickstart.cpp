// obs_quickstart: the observability subsystem in ~60 lines.
//
// Runs Algorithm NC on a small generated instance with (1) an in-memory
// event trace, (2) hot-path metrics, and (3) a profiled suite, then prints
// what each pillar collected.  See docs/observability.md for the full story.
#include <cstdio>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/analysis/ratio_harness.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/profiler.h"
#include "src/obs/trace.h"
#include "src/workload/generators.h"

using namespace speedscale;

int main() {
  const double alpha = 2.0;
  const Instance inst = workload::generate({.n_jobs = 8, .arrival_rate = 1.0, .seed = 7});

  // --- Pillar 1: structured event tracing -------------------------------
  // ScopedTracing enables the global switch and attaches the sink; both are
  // restored when it goes out of scope.  RingBufferSink keeps the most
  // recent events in memory (JsonlSink streams them to a file instead).
  auto ring = std::make_shared<obs::RingBufferSink>();
  RunResult nc(alpha);
  {
    obs::ScopedTracing tracing(ring);
    nc = run_nc_uniform(inst, alpha);
  }
  std::printf("trace: %zu events; last completion carries the run totals:\n", ring->size());
  for (const obs::TraceEvent& ev : ring->events()) {
    if (ev.kind != obs::EventKind::kJobComplete) continue;
    std::printf("  t=%-8.4g job=%-3d cum_energy=%-10.6g cum_flow=%.6g\n", ev.t, ev.job, ev.value,
                ev.aux);
  }
  std::printf("  (RunResult says   energy=%-10.6g flow=%.6g)\n\n", nc.metrics.energy,
              nc.metrics.fractional_flow);

  // --- Pillar 2: metrics registry ---------------------------------------
  // Hot-path counters are gated on set_metrics_enabled; named metrics can
  // also be used directly, as the thread pool does.
  obs::set_metrics_enabled(true);
  (void)run_nc_uniform(inst, alpha);
  obs::set_metrics_enabled(false);
  std::printf("metrics: nc_uniform runs = %lld, c_machine segments = %lld (virtual C run)\n\n",
              static_cast<long long>(obs::registry().counter("algo.nc_uniform.runs").value()),
              static_cast<long long>(obs::registry().counter("sim.c_machine.segments").value()));

  // --- Pillar 3: profiling hooks ----------------------------------------
  // run_suite wraps each algorithm in OBS_TIMED_SCOPE("suite.*"); the
  // profiler aggregates wall time per label.
  (void)analysis::run_suite(inst, alpha);
  std::printf("%s", obs::profiler().report_text().c_str());
  return 0;
}
