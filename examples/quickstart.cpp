// Quickstart: schedule a handful of jobs with the non-clairvoyant algorithm
// and compare against the clairvoyant reference and the offline optimum.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/bounds.h"
#include "src/opt/convex_opt.h"

using namespace speedscale;

int main() {
  // A machine with power P(s) = s^alpha.
  const double alpha = 2.0;

  // Four jobs: {id (assigned on construction), release, volume, density}.
  // In the non-clairvoyant model the algorithm sees release and density at
  // arrival; volume only when the job finishes.
  const Instance instance({
      Job{kNoJob, 0.0, 2.0, 1.0},
      Job{kNoJob, 0.5, 0.7, 1.0},
      Job{kNoJob, 1.2, 1.5, 1.0},
      Job{kNoJob, 3.0, 0.4, 1.0},
  });

  // The paper's non-clairvoyant Algorithm NC (uniform densities):
  // FIFO order, power = W^C(r_j^-) + weight processed of the current job.
  const RunResult nc = run_nc_uniform(instance, alpha);

  // The clairvoyant reference (Algorithm C: HDF, power = remaining weight).
  const RunResult c = run_c(instance, alpha);

  // A numerical offline optimum for the fractional objective.
  const ConvexOptResult opt = solve_fractional_opt(instance, alpha);

  std::printf("objective (energy + fractional flow):\n");
  std::printf("  offline OPT   : %8.4f\n", opt.objective);
  std::printf("  Algorithm C   : %8.4f  (clairvoyant, 2-competitive)\n",
              c.metrics.fractional_objective());
  std::printf("  Algorithm NC  : %8.4f  (non-clairvoyant, %.2f-competitive)\n",
              nc.metrics.fractional_objective(), bounds::nc_uniform_fractional(alpha));
  std::printf("\nper-job completion times (NC):\n");
  for (const Job& j : instance.jobs()) {
    std::printf("  job %d: released %.2f, volume %.2f -> completed %.4f\n", j.id, j.release,
                j.volume, nc.schedule.completion(j.id));
  }
  std::printf("\nthe paper's exact identities on this instance:\n");
  std::printf("  energy(NC)  = %.6f == energy(C) = %.6f   [Lemma 3]\n", nc.metrics.energy,
              c.metrics.energy);
  std::printf("  flow(NC)    = %.6f == flow(C)/(1-1/alpha) = %.6f   [Lemma 4]\n",
              nc.metrics.fractional_flow,
              c.metrics.fractional_flow * bounds::nc_over_c_flow(alpha));
  return 0;
}
