// telemetry_tool: terminal client for the live telemetry plane.
//
//   telemetry_tool --connect ADDRESS                 # dump /metrics (Prometheus text)
//   telemetry_tool --connect ADDRESS --endpoint /snapshot.json
//   telemetry_tool --connect ADDRESS --list          # series names, last, rate
//   telemetry_tool --connect ADDRESS --watch [--metric NAME]...
//                  [--interval-ms N] [--frames N] [--no-clear]
//   telemetry_tool --connect ADDRESS --watch --fleet # fleet.* dashboard
//   telemetry_tool --history FILE [--window K]       # perf-history trends
//
// ADDRESS is "HOST:PORT" or "unix:PATH" — whatever a serving process
// printed (e.g. `datacenter_cluster --serve-metrics 0 --port-file F`, or
// `bench_suite_runner --fleet N --serve-metrics 0 --port-file F`).
// --watch polls /series.json and renders the selected series (default: the
// highest-rate counter) as an ASCII chart (src/analysis/ascii_chart.h) with
// a rate table, refreshing in place.  --frames bounds the refresh count so
// the watch view is scriptable (CI smoke uses --frames 2).
//
// --fleet switches the watch body to the fleet supervisor dashboard: run
// totals (workers alive, restarts, hung kills, ETA), the item-latency
// percentiles, and a per-shard progress table — all read from the fleet.*
// gauges a Supervisor publishes (supervisor.h).
//
// --history renders a speedscale.history/1 trajectory file offline (no
// server needed): store totals, the sentinel's verdict tallies, and a
// sparkline per flagged or recently-changed series — the terminal's answer
// to "did anything move across the last K runs?".  perf_report is the full
// report/gate; this is the glanceable dashboard.
//
// A watch never dies mid-run because the plane under it hiccuped: a failed
// poll re-renders the previous frame marked STALE, and a series that was
// selected but disappeared between polls (hub pruning, worker restart) is
// annotated "(gone)" instead of silently vanishing from the chart.  Only a
// failure on the *first* poll — nothing ever scraped — exits 1.
//
// Exit codes: 0 ok, 1 connection/scrape failure, 2 usage.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/ascii_chart.h"
#include "src/core/types.h"
#include "src/obs/history/history_store.h"
#include "src/obs/history/sentinel.h"
#include "src/obs/json_min.h"
#include "src/obs/live/telemetry_server.h"

using namespace speedscale;

namespace {

struct SeriesInfo {
  std::string name;
  std::string kind;
  double last = 0.0;
  double rate = 0.0;
  std::vector<double> t, v;
};

std::vector<SeriesInfo> fetch_series(const std::string& address) {
  const obs::JsonValue doc = obs::parse_json(obs::live::scrape(address, "/series.json"));
  std::vector<SeriesInfo> out;
  const obs::JsonValue* series = doc.find("series");
  if (series == nullptr || !series->is_object()) return out;
  for (const auto& [name, val] : series->object) {
    SeriesInfo info;
    info.name = name;
    if (const obs::JsonValue* kind = val.find("kind")) info.kind = kind->string;
    if (const obs::JsonValue* last = val.find("last")) info.last = last->number;
    if (const obs::JsonValue* rate = val.find("rate")) info.rate = rate->number;
    if (const obs::JsonValue* points = val.find("points")) {
      for (const obs::JsonValue& p : points->array) {
        if (p.array.size() == 2) {
          info.t.push_back(p.array[0].number);
          info.v.push_back(p.array[1].number);
        }
      }
    }
    out.push_back(std::move(info));
  }
  return out;
}

int run_list(const std::string& address) {
  const std::vector<SeriesInfo> series = fetch_series(address);
  std::printf("%-52s %-9s %14s %12s\n", "series", "kind", "last", "rate/s");
  for (const SeriesInfo& s : series) {
    std::printf("%-52s %-9s %14.4g %12.4g\n", s.name.c_str(), s.kind.c_str(), s.last, s.rate);
  }
  std::printf("%zu series\n", series.size());
  return 0;
}

/// The default watch target: the counter moving fastest right now.
std::string pick_default_metric(const std::vector<SeriesInfo>& series) {
  std::string best;
  double best_rate = -1.0;
  for (const SeriesInfo& s : series) {
    if (s.kind != "counter") continue;
    if (s.rate > best_rate) {
      best_rate = s.rate;
      best = s.name;
    }
  }
  if (best.empty() && !series.empty()) best = series.front().name;
  return best;
}

const SeriesInfo* find_series(const std::vector<SeriesInfo>& series, const std::string& name) {
  for (const SeriesInfo& s : series) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

double gauge_or(const std::vector<SeriesInfo>& series, const std::string& name, double fallback) {
  const SeriesInfo* s = find_series(series, name);
  return s ? s->last : fallback;
}

/// Renders the fleet supervisor dashboard from the fleet.* gauges
/// (supervisor.h publishes them; the hub derives the wall-ms percentiles
/// from the fleet.item_wall_ms histogram).
void render_fleet(std::ostringstream& out, const std::vector<SeriesInfo>& series) {
  const SeriesInfo* shards_s = find_series(series, "fleet.shards");
  if (shards_s == nullptr) {
    out << "\n(no fleet.* series — is a fleet run with the observability "
           "plane enabled being scraped?)\n";
    return;
  }
  const long shards = static_cast<long>(shards_s->last);
  const double done = gauge_or(series, "fleet.items_done", 0.0);
  const double total = gauge_or(series, "fleet.items_total", 0.0);
  const double eta = gauge_or(series, "fleet.eta_seconds", -1.0);
  char line[200];
  std::snprintf(line, sizeof(line),
                "\nfleet: %ld shard(s)   workers alive %.0f   restarts %.0f   hung kills %.0f\n",
                shards, gauge_or(series, "fleet.workers_alive", 0.0),
                gauge_or(series, "fleet.restarts_total", 0.0),
                gauge_or(series, "fleet.hung_kills_total", 0.0));
  out << line;
  std::snprintf(line, sizeof(line), "items %.0f/%.0f (%.1f%%)", done, total,
                total > 0.0 ? 100.0 * done / total : 0.0);
  out << line;
  // ETA is rate-derived: with zero items done there is no rate yet and the
  // straggler math's value would be meaningless — leave the field blank.
  if (done > 0.0 && eta >= 0.0) {
    std::snprintf(line, sizeof(line), "   eta %.1f s", eta);
    out << line;
  }
  out << '\n';
  const SeriesInfo* p50 = find_series(series, "fleet.item_wall_ms.p50");
  if (p50 != nullptr) {
    std::snprintf(line, sizeof(line), "item wall ms  p50 %.3g  p95 %.3g  p99 %.3g\n",
                  p50->last, gauge_or(series, "fleet.item_wall_ms.p95", 0.0),
                  gauge_or(series, "fleet.item_wall_ms.p99", 0.0));
    out << line;
  }
  out << "  shard        done    restarts    hb age s\n";
  for (long s = 0; s < shards; ++s) {
    const std::string prefix = "fleet.shard." + std::to_string(s) + ".";
    const SeriesInfo* shard_done = find_series(series, prefix + "items_done");
    if (shard_done == nullptr) {
      std::snprintf(line, sizeof(line), "  %5ld      (gone)\n", s);
    } else {
      std::snprintf(line, sizeof(line), "  %5ld  %10.0f  %10.0f  %10.2f\n", s, shard_done->last,
                    gauge_or(series, prefix + "restarts", 0.0),
                    gauge_or(series, prefix + "heartbeat_age_seconds", 0.0));
    }
    out << line;
  }
}

int run_watch(const std::string& address, std::vector<std::string> metrics, long interval_ms,
              long frames, bool clear, bool fleet) {
  const char glyphs[] = {'*', '+', 'o', 'x'};
  std::vector<SeriesInfo> series;   // last successful poll (kept across failures)
  bool ever_fetched = false;
  std::string stale_reason;
  for (long frame = 0; frames == 0 || frame < frames; ++frame) {
    // Degrade, don't die: a run being watched is exactly the kind that
    // restarts workers or briefly drops its listener.  Any poll after the
    // first that fails re-renders the previous frame marked STALE.
    try {
      series = fetch_series(address);
      ever_fetched = true;
      stale_reason.clear();
    } catch (const std::exception& e) {
      if (!ever_fetched) throw;  // never connected: a real usage error
      stale_reason = e.what();
    }
    std::vector<std::string> selected = metrics;
    if (selected.empty() && !fleet) {
      const std::string def = pick_default_metric(series);
      if (!def.empty()) selected.push_back(def);
    }

    std::ostringstream frame_out;
    if (fleet) {
      frame_out << "fleet telemetry — " << address << '\n';
      render_fleet(frame_out, series);
    } else {
      std::vector<analysis::Series> chart;
      std::vector<std::string> gone;
      for (std::size_t i = 0; i < selected.size(); ++i) {
        const SeriesInfo* s = find_series(series, selected[i]);
        if (s == nullptr) {
          // Selected but absent this poll (pruned by the hub, or the
          // publisher restarted): say so rather than silently dropping it.
          gone.push_back(selected[i]);
          continue;
        }
        analysis::Series cs;
        cs.name = s->name;
        cs.x = s->t;
        cs.y = s->v;
        cs.glyph = glyphs[i % sizeof(glyphs)];
        chart.push_back(std::move(cs));
      }
      analysis::plot(frame_out, chart, 72, 16, "live telemetry — " + address);
      for (const std::string& name : gone) {
        frame_out << "  " << name << ": (gone — not in this poll)\n";
      }

      // Top movers: the busiest counters right now.
      std::vector<const SeriesInfo*> counters;
      for (const SeriesInfo& s : series) {
        if (s.kind == "counter" && s.rate > 0.0) counters.push_back(&s);
      }
      std::sort(counters.begin(), counters.end(),
                [](const SeriesInfo* a, const SeriesInfo* b) { return a->rate > b->rate; });
      frame_out << "\ntop counters by rate:\n";
      const std::size_t top = std::min<std::size_t>(counters.size(), 8);
      for (std::size_t i = 0; i < top; ++i) {
        char line[160];
        std::snprintf(line, sizeof(line), "  %-48s %14.0f %12.1f/s\n",
                      counters[i]->name.c_str(), counters[i]->last, counters[i]->rate);
        frame_out << line;
      }
      if (top == 0) frame_out << "  (no counters moving)\n";
    }
    if (!stale_reason.empty()) {
      frame_out << "\nSTALE — last poll failed (" << stale_reason << "); showing previous data\n";
    }

    if (clear) std::fputs("\x1b[2J\x1b[H", stdout);
    std::fputs(frame_out.str().c_str(), stdout);
    std::fflush(stdout);
    if (frames == 0 || frame + 1 < frames) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
  }
  return 0;
}

/// --history: offline trajectory dashboard over a speedscale.history/1 file.
int run_history(const std::string& path, std::size_t window) {
  namespace hist = obs::history;
  hist::LoadStats stats;
  const hist::HistoryStore store =
      hist::HistoryStore::load_file(path, hist::LoadMode::kLenient, &stats);
  store.publish_gauges(&stats);
  std::printf("perf history — %s\n", path.c_str());
  std::printf("runs %zu   bench entries %zu   records %zu   cost rows %zu\n", store.runs(),
              store.bench_entries(), store.records().size(), store.cost_rows());
  if (stats.skipped_lines > 0 || stats.duplicates > 0) {
    std::printf("lenient load: %zu line(s) skipped, %zu duplicate(s) superseded\n",
                stats.skipped_lines, stats.duplicates);
  }
  if (store.records().empty()) {
    std::printf("(empty trajectory — ingest ledgers with perf_report --ingest)\n");
    return 0;
  }
  hist::SentinelOptions opt;
  opt.window = window;
  const hist::SentinelReport report = hist::analyze(store, opt);
  hist::publish_sentinel_gauges(report);
  std::printf("sentinel: %zu ok, %zu advisory, %zu regression -> %s\n", report.n_ok,
              report.n_advisory, report.n_regression, hist::verdict_name(report.overall()));
  // The glanceable part: every non-ok series, plus any with a changepoint.
  std::size_t shown = 0;
  for (const hist::SeriesVerdict& sv : report.series) {
    if (sv.verdict == hist::Verdict::kOk && sv.changepoint_run < 0) continue;
    std::printf("  %-10s %-38s %-22s %s\n", hist::verdict_name(sv.verdict),
                (sv.entry + " " + sv.metric).c_str(),
                analysis::sparkline(sv.values, 20).c_str(), sv.reason.c_str());
    ++shown;
  }
  if (shown == 0) std::printf("  (no series moved across the recorded runs)\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: telemetry_tool --connect ADDRESS [--endpoint PATH] [--list]\n"
               "                      [--watch] [--fleet] [--metric NAME]... [--interval-ms N]\n"
               "                      [--frames N] [--no-clear]\n"
               "       telemetry_tool --history FILE [--window K]\n"
               "  ADDRESS: \"HOST:PORT\" or \"unix:PATH\"\n"
               "  --fleet: render the fleet.* supervisor dashboard instead of a chart\n"
               "  --history: render a speedscale.history/1 trajectory offline\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string address, endpoint = "/metrics", history_path;
  std::vector<std::string> metrics;
  long interval_ms = 500, frames = 0, window = 8;
  bool watch = false, list = false, clear = true, fleet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      address = argv[++i];
    } else if (arg == "--history" && i + 1 < argc) {
      history_path = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::atol(argv[++i]);
    } else if (arg == "--endpoint" && i + 1 < argc) {
      endpoint = argv[++i];
    } else if (arg == "--metric" && i + 1 < argc) {
      metrics.push_back(argv[++i]);
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      interval_ms = std::atol(argv[++i]);
    } else if (arg == "--frames" && i + 1 < argc) {
      frames = std::atol(argv[++i]);
    } else if (arg == "--watch") {
      watch = true;
    } else if (arg == "--fleet") {
      fleet = true;
      watch = true;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--no-clear") {
      clear = false;
    } else {
      return usage();
    }
  }
  if (!history_path.empty()) {
    if (window < 2) return usage();
    try {
      return run_history(history_path, static_cast<std::size_t>(window));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "telemetry_tool: %s\n", e.what());
      return 1;
    }
  }
  if (address.empty() || interval_ms < 1 || frames < 0) return usage();

  try {
    if (watch) return run_watch(address, metrics, interval_ms, frames, clear, fleet);
    if (list) return run_list(address);
    const std::string body = obs::live::scrape(address, endpoint);
    std::fputs(body.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "telemetry_tool: %s\n", e.what());
    return 1;
  }
}
