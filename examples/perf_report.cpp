// perf_report: the perf-history observatory's CLI — ingest, trend, gate.
//
//   perf_report --store H.jsonl --ingest BENCH_PR3.json [--ingest ...]
//   perf_report --store H.jsonl --report [--window K] [--entry SUBSTR]
//   perf_report --store H.jsonl --gate [--markdown report.md]
//   perf_report --self-test
//
// --ingest appends each document as one new run of the speedscale.history/1
// trajectory (auto-detected: a speedscale.bench_ledger/1 becomes bench
// records, a speedscale.fleet_cost/1 — or a fleet_state.json with an
// embedded cost ledger — becomes per-item cost records) and rewrites the
// store crash-safely.  Ingest order defines run order, so a fixed CI recipe
// (baselines first, current ledgers after) yields a deterministic
// trajectory.
//
// --report runs the regression sentinel (src/obs/history/sentinel.h) over
// every bench series: deterministic counters hard-verdict on any change,
// wall times advisory against a median/MAD noise band, monotone drift
// flagged.  Trend tables print via analysis::Table with an ascii sparkline
// per series; --markdown writes the same report as a CI-pasteable table.
//
// Exit codes (trace_tool --certify convention): 0 ok, 1 load/ingest error,
// 2 usage, 3 a regression verdict with --gate.  Advisory verdicts never
// gate — the counters-hard/wall-advisory contract of docs/observability.md.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/analysis/ascii_chart.h"
#include "src/analysis/table.h"
#include "src/obs/history/cost_model.h"
#include "src/obs/history/history_store.h"
#include "src/obs/history/sentinel.h"
#include "src/obs/json_min.h"
#include "src/obs/perf/bench_ledger.h"
#include "src/robust/atomic_io.h"

using namespace speedscale;
namespace hist = obs::history;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

/// Routes one document to the right ingest by its "schema" key.
std::int64_t ingest_document(hist::HistoryStore& store, const std::string& text,
                             const std::string& path) {
  const obs::JsonValue doc = obs::parse_json(text);
  const obs::JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string()) {
    throw std::runtime_error(path + ": no schema key");
  }
  if (schema->string == "speedscale.bench_ledger/1") return store.ingest_bench_ledger(text);
  if (schema->string == "speedscale.fleet_cost/1" ||
      schema->string == "speedscale.fleet_state/1") {
    return store.ingest_cost_report(text);
  }
  throw std::runtime_error(path + ": unsupported schema " + schema->string);
}

bool contains(const std::string& haystack, const std::string& needle) {
  return needle.empty() || haystack.find(needle) != std::string::npos;
}

void print_report(const hist::HistoryStore& store, const hist::SentinelReport& report,
                  const std::string& entry_filter, bool verbose_ok) {
  std::printf("perf history: %zu run(s), %zu bench entr%s, %zu cost row(s)\n", store.runs(),
              store.bench_entries(), store.bench_entries() == 1 ? "y" : "ies",
              store.cost_rows());
  analysis::Table table({"entry", "metric", "verdict", "runs", "latest", "center", "band",
                         "trend", "note"});
  std::size_t rows = 0;
  for (const hist::SeriesVerdict& sv : report.series) {
    if (!contains(sv.entry, entry_filter)) continue;
    if (!verbose_ok && sv.verdict == hist::Verdict::kOk && sv.changepoint_run < 0) continue;
    std::string note = sv.reason;
    if (sv.changepoint_run >= 0) {
      if (!note.empty()) note += "; ";
      note += "changepoint @ run " + std::to_string(sv.changepoint_run);
    }
    table.add_row({sv.entry, sv.metric, hist::verdict_name(sv.verdict),
                   analysis::Table::cell(static_cast<long>(sv.n_points)),
                   analysis::Table::cell(sv.latest), analysis::Table::cell(sv.median),
                   analysis::Table::cell(sv.band), analysis::sparkline(sv.values, 16), note});
    ++rows;
  }
  std::ostringstream os;
  if (rows > 0) {
    table.print(os);
  } else {
    os << "(no series to show — every series ok with no changepoint; use --all to list)\n";
  }
  std::fputs(os.str().c_str(), stdout);
  std::printf("sentinel: %zu ok, %zu advisory, %zu regression -> %s\n", report.n_ok,
              report.n_advisory, report.n_regression, hist::verdict_name(report.overall()));
}

void write_markdown(const std::string& path, const hist::HistoryStore& store,
                    const hist::SentinelReport& report, const std::string& entry_filter) {
  std::ostringstream md;
  md << "# Perf history report\n\n";
  md << "- runs: " << store.runs() << "\n- bench entries: " << store.bench_entries()
     << "\n- cost rows: " << store.cost_rows() << "\n- overall verdict: **"
     << hist::verdict_name(report.overall()) << "** (" << report.n_ok << " ok, "
     << report.n_advisory << " advisory, " << report.n_regression << " regression)\n\n";
  md << "| entry | metric | verdict | runs | latest | center | band | trend | note |\n";
  md << "|---|---|---|---:|---:|---:|---:|---|---|\n";
  for (const hist::SeriesVerdict& sv : report.series) {
    if (!contains(sv.entry, entry_filter)) continue;
    if (sv.verdict == hist::Verdict::kOk && sv.changepoint_run < 0) continue;
    std::string note = sv.reason;
    if (sv.changepoint_run >= 0) {
      if (!note.empty()) note += "; ";
      note += "changepoint @ run " + std::to_string(sv.changepoint_run);
    }
    md << "| " << sv.entry << " | " << sv.metric << " | " << hist::verdict_name(sv.verdict)
       << " | " << sv.n_points << " | " << analysis::Table::cell(sv.latest) << " | "
       << analysis::Table::cell(sv.median) << " | " << analysis::Table::cell(sv.band) << " | `"
       << analysis::sparkline(sv.values, 16) << "` | " << note << " |\n";
  }
  const std::string doc = md.str();
  robust::atomic_write_file(path, [&](std::ostream& os) { os << doc; });
}

/// Deterministic end-to-end self-check: a seeded injected counter regression
/// must flag, and a no-change rerun must stay ok.  Mirrors the acceptance
/// criterion so CI can assert it without fixture files.
int self_test() {
  auto make_ledger = [](std::int64_t steps) {
    obs::perf::BenchLedger ledger("selftest");
    ledger.set_config("mode", "selftest");
    auto& e = ledger.entry("sim.toy/8");
    e.repetitions = 3;
    e.wall_ns = {1000.0, 1010.0, 990.0};
    e.counters["sim.steps"] = steps;
    return ledger.to_json();
  };
  hist::HistoryStore store;
  for (int run = 0; run < 4; ++run) store.ingest_bench_ledger(make_ledger(500));

  // No-change rerun: every series ok.
  {
    const hist::SentinelReport report = hist::analyze(store);
    if (report.overall() != hist::Verdict::kOk || report.n_regression != 0) {
      std::fprintf(stderr, "self-test: clean trajectory not ok\n");
      return 1;
    }
  }
  // Injected counter regression: must flag, deterministically, twice.
  store.ingest_bench_ledger(make_ledger(525));
  for (int round = 0; round < 2; ++round) {
    const hist::SentinelReport report = hist::analyze(store);
    if (report.overall() != hist::Verdict::kRegression || report.n_regression != 1) {
      std::fprintf(stderr, "self-test: injected regression not flagged\n");
      return 1;
    }
    const hist::SeriesVerdict* flagged = nullptr;
    for (const hist::SeriesVerdict& sv : report.series) {
      if (sv.verdict == hist::Verdict::kRegression) flagged = &sv;
    }
    if (flagged == nullptr || flagged->metric != "sim.steps" ||
        flagged->changepoint_run != 4) {
      std::fprintf(stderr, "self-test: wrong series flagged\n");
      return 1;
    }
  }
  // Round-trip: the trajectory reparses byte-identically.
  const std::string doc = store.to_jsonl();
  const hist::HistoryStore reparsed = hist::HistoryStore::parse(doc, hist::LoadMode::kStrict);
  if (reparsed.to_jsonl() != doc) {
    std::fprintf(stderr, "self-test: round-trip not byte-stable\n");
    return 1;
  }
  // Cost model: LPT beats static on a skewed synthetic cost vector.
  const std::vector<double> costs = {8.0, 1.0, 1.0, 1.0, 7.0, 1.0, 1.0, 1.0};
  const hist::ShardPlan plan = hist::plan_assignment(costs, 2);
  if (plan.makespan > plan.static_makespan || plan.assignment.size() != costs.size()) {
    std::fprintf(stderr, "self-test: LPT plan worse than static\n");
    return 1;
  }
  std::printf("perf_report self-test ok\n");
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: perf_report --store FILE [--ingest FILE]... [--lenient]\n"
               "                   [--report] [--all] [--window K] [--entry SUBSTR]\n"
               "                   [--markdown FILE] [--gate] [--self-test]\n"
               "  exit codes: 0 ok, 1 error, 2 usage, 3 regression (with --gate)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string store_path, entry_filter, markdown_path;
  std::vector<std::string> ingest;
  long window = 8;
  bool lenient = false, report_flag = false, gate = false, all = false, do_self_test = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--store" && i + 1 < argc) {
      store_path = argv[++i];
    } else if (arg == "--ingest" && i + 1 < argc) {
      ingest.push_back(argv[++i]);
    } else if (arg == "--entry" && i + 1 < argc) {
      entry_filter = argv[++i];
    } else if (arg == "--markdown" && i + 1 < argc) {
      markdown_path = argv[++i];
    } else if (arg == "--window" && i + 1 < argc) {
      window = std::atol(argv[++i]);
    } else if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--report") {
      report_flag = true;
    } else if (arg == "--all") {
      all = true;
    } else if (arg == "--gate") {
      gate = true;
    } else if (arg == "--self-test") {
      do_self_test = true;
    } else {
      return usage();
    }
  }
  if (do_self_test) return self_test();
  if (store_path.empty() || window < 2) return usage();

  try {
    hist::LoadStats stats;
    const hist::LoadMode mode = lenient ? hist::LoadMode::kLenient : hist::LoadMode::kStrict;
    // A store that doesn't exist yet is a normal first --ingest; strict mode
    // only insists on files it can open being well-formed.
    hist::HistoryStore store;
    if (std::ifstream(store_path)) {
      store = hist::HistoryStore::load_file(store_path, mode, &stats);
    }

    for (const std::string& path : ingest) {
      const std::int64_t run = ingest_document(store, read_file(path), path);
      std::printf("ingested %s as run %lld\n", path.c_str(), static_cast<long long>(run));
    }
    if (!ingest.empty()) store.write_file(store_path);
    store.publish_gauges(&stats);

    hist::SentinelOptions opt;
    opt.window = static_cast<std::size_t>(window);
    const hist::SentinelReport report = hist::analyze(store, opt);
    hist::publish_sentinel_gauges(report);

    if (report_flag || gate || ingest.empty()) {
      print_report(store, report, entry_filter, all);
    }
    if (!markdown_path.empty()) write_markdown(markdown_path, store, report, entry_filter);
    if (gate && report.overall() == hist::Verdict::kRegression) return 3;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "perf_report: %s\n", e.what());
    return 1;
  }
}
