// Custom-policy demo: extending the library with your own non-clairvoyant
// speed rule through the ObservableState game interface (Section 1.2's
// formalization of non-clairvoyance).
//
// Implements two policies from scratch:
//   1. "SquareRootCount": FIFO order, power = number of active jobs
//      (a known-weight-style rule, here used blind);
//   2. "ProcessedPlusOne": FIFO, power = 1 + weight processed of the
//      current job (an NC-like rule with a crude constant offset);
// and compares both against the paper's Algorithm NC and the clairvoyant C.
#include <cstdio>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/core/kinematics.h"
#include "src/sim/custom_policy.h"
#include "src/workload/generators.h"

using namespace speedscale;

namespace {

JobId fifo_pick(const ObservableState& st) {
  for (const auto& j : st.jobs) {
    if (!j.completed) return j.id;
  }
  return kNoJob;
}

}  // namespace

int main() {
  const double alpha = 2.0;
  const Instance inst = workload::generate({.n_jobs = 16, .arrival_rate = 1.5, .seed = 12});
  const PowerLawKinematics kin(alpha);

  // Policy 1: power = active count.
  const SpeedPolicy sqrt_count = [&](const ObservableState& st) -> PolicyDecision {
    const JobId cur = fifo_pick(st);
    if (cur == kNoJob) return {};
    return {cur, kin.speed_at_weight(static_cast<double>(st.active_count()))};
  };

  // Policy 2: power = 1 + processed weight of the current job.
  const SpeedPolicy processed_plus_one = [&](const ObservableState& st) -> PolicyDecision {
    const JobId cur = fifo_pick(st);
    if (cur == kNoJob) return {};
    double processed = 0.0, density = 1.0;
    for (const auto& j : st.jobs) {
      if (j.id == cur) {
        processed = j.processed;
        density = j.density;
      }
    }
    return {cur, kin.speed_at_weight(1.0 + density * processed)};
  };

  const RunResult p1 = run_custom_policy(inst, alpha, sqrt_count);
  const RunResult p2 = run_custom_policy(inst, alpha, processed_plus_one);
  const RunResult nc = run_nc_uniform(inst, alpha);
  const RunResult c = run_c(inst, alpha);

  std::printf("custom non-clairvoyant policies vs the paper's algorithms\n");
  std::printf("(16 jobs, alpha = 2, fractional objective = energy + weighted flow)\n\n");
  std::printf("%-32s %10s %10s %12s\n", "policy", "energy", "flow", "objective");
  const auto row = [](const char* name, const Metrics& m) {
    std::printf("%-32s %10.3f %10.3f %12.3f\n", name, m.energy, m.fractional_flow,
                m.fractional_objective());
  };
  row("C (clairvoyant reference)", c.metrics);
  row("NC (paper, exact offsets)", nc.metrics);
  row("custom: power = active count", p1.metrics);
  row("custom: power = 1 + processed", p2.metrics);

  std::printf("\nThe engine enforces non-clairvoyance structurally: ObservableState has\n");
  std::printf("no volume field, so a policy physically cannot cheat.  See\n");
  std::printf("src/sim/custom_policy.h to plug in your own rule.\n");
  return 0;
}
