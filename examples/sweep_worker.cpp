// Fleet worker: one shard of a supervised multi-process sweep.
//
// Spawned by robust::supervisor::Supervisor (or by hand, for debugging) as
//
//   sweep_worker --spec spec.json --shard S --out shard_S.jsonl
//                --heartbeat heartbeat_S.json [--run-id ID] [--incarnation N]
//                [--events events_S.jsonl] [--log log_S.jsonl]
//                [--fault SITE@INDEX]...
//
// With the observability flags (passed by the supervisor when its
// FleetObsOptions plane is on), the worker stamps every structured log
// record and shard-log line with (run_id, shard, incarnation) and journals
// worker_start / item_begin / item_end / worker_exit fleet events — the raw
// material of the supervisor's merged Perfetto trace and cost ledger.
//
// The worker re-reads the fleet spec, resumes from its own shard log (items
// already logged by a previous incarnation are skipped), and then runs its
// statically-owned items — index i belongs to shard i % shards — appending
// one flushed JSONL line per completed item and rewriting its heartbeat file
// atomically at every item boundary.  All crash-recovery intelligence lives
// in the supervisor; the worker's only contract is "log each finished item
// before starting the next, and pulse".
//
// Signals: SIGTERM/SIGINT finish the in-flight item, flush its line, and
// exit kWorkerExitInterrupted (75) — a cancelled fleet resumes instead of
// recomputing (same clean-shutdown contract as datacenter_cluster
// --serve-metrics).  Exit codes are the protocol of
// src/robust/supervisor/shard_log.h: 64 bad spec/arguments, 65 deterministic
// item failure, 70 transient I/O trouble (supervisor restarts), 0 done.
//
// --fault installs a deterministic chaos plan (src/robust/fault_injection.h)
// by site name and 0-based call index, e.g. "worker_crash_mid_shard@1":
// compute the incarnation's second item, then SIGKILL yourself before
// committing it.  The supervisor passes these only on a shard's first
// incarnation, so injected crashes fire once and the respawn runs clean.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "src/obs/fleet/fleet_events.h"
#include "src/obs/log/logger.h"
#include "src/obs/metrics_registry.h"
#include "src/robust/fault_injection.h"
#include "src/robust/supervisor/item_runner.h"
#include "src/robust/supervisor/shard_log.h"
#include "src/robust/supervisor/work_spec.h"

using namespace speedscale;
using namespace speedscale::robust::supervisor;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(stderr,
               "usage: sweep_worker --spec FILE --shard N --out FILE --heartbeat FILE\n"
               "                    [--run-id ID] [--incarnation N] [--events FILE]\n"
               "                    [--log FILE] [--fault SITE@INDEX]...\n");
  return kWorkerExitSpecError;
}

/// "site_name@index" -> one fired call index in `plan`.
bool add_fault_arg(robust::FaultPlan& plan, const std::string& arg) {
  const std::size_t at = arg.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= arg.size()) return false;
  const auto site = robust::fault_site_by_name(arg.substr(0, at));
  if (!site) return false;
  char* end = nullptr;
  const unsigned long long index = std::strtoull(arg.c_str() + at + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  plan.fire_at[static_cast<std::size_t>(*site)].insert(index);
  return true;
}

/// Min gap between heartbeat writes.  A pulse is an atomic tmp+rename, and
/// items can be sub-millisecond; per-item pulses would dominate the fleet's
/// wall overhead (E24).  Liveness only needs the seq to advance well inside
/// the watchdog deadline (heartbeat_min_seconds floor: 5 s by default), so
/// 50 ms of staleness is invisible to the supervisor.
constexpr std::chrono::milliseconds kPulseInterval{50};

void pulse(const std::string& path, WorkerHeartbeat& hb, bool force = false) {
  static std::chrono::steady_clock::time_point last_write{};  // epoch: 1st fires
  const auto now = std::chrono::steady_clock::now();
  if (!force && now - last_write < kPulseInterval) return;
  last_write = now;
  hb.seq += 1;
  try {
    write_heartbeat(path, hb);
  } catch (const std::exception&) {
    // Heartbeats are liveness, not state — a failed pulse just looks like a
    // stall to the supervisor, which is the correct degraded behavior.
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_path, heartbeat_path, run_id, events_path, log_path;
  std::size_t shard = 0;
  long incarnation = 0;
  bool have_shard = false;
  robust::FaultPlan plan;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--shard" && i + 1 < argc) {
      shard = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      have_shard = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--heartbeat" && i + 1 < argc) {
      heartbeat_path = argv[++i];
    } else if (arg == "--run-id" && i + 1 < argc) {
      run_id = argv[++i];
    } else if (arg == "--incarnation" && i + 1 < argc) {
      incarnation = std::strtol(argv[++i], nullptr, 10);
    } else if (arg == "--events" && i + 1 < argc) {
      events_path = argv[++i];
    } else if (arg == "--log" && i + 1 < argc) {
      log_path = argv[++i];
    } else if (arg == "--fault" && i + 1 < argc) {
      if (!add_fault_arg(plan, argv[++i])) return usage();
    } else {
      return usage();
    }
  }
  if (spec_path.empty() || out_path.empty() || heartbeat_path.empty() || !have_shard) {
    return usage();
  }

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  obs::set_metrics_enabled(true);
  if (!plan.empty()) robust::FaultInjector::instance().install(std::move(plan));

  // Correlation tags (PR 8): every log record, journal event, and shard-log
  // line this process writes is attributable to (run_id, shard,
  // incarnation) after the fact — that is the whole cross-process story.
  obs::log::Logger::instance().set_tags({run_id, static_cast<long>(shard), incarnation});
  if (!log_path.empty()) {
    try {
      obs::log::Logger::instance().open(log_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[sweep_worker] cannot open log: %s\n", e.what());
      // Observability, not state: run anyway, mirror-only.
    }
  }
  std::unique_ptr<obs::fleet::FleetEventLog> events;
  obs::fleet::EventClock event_clock;
  if (!events_path.empty()) {
    try {
      events = std::make_unique<obs::fleet::FleetEventLog>(events_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "[sweep_worker] cannot open event journal: %s\n", e.what());
    }
  }
  const auto journal = [&](obs::fleet::FleetEventKind kind, std::int64_t item, double wall_ms,
                           const std::string& detail) {
    if (!events) return;
    obs::fleet::FleetEvent ev;
    ev.kind = kind;
    ev.ts = event_clock.next();
    ev.run_id = run_id;
    ev.shard = static_cast<long>(shard);
    ev.incarnation = incarnation;
    ev.item = item;
    // Golden-run determinism: under the fixed clock, measured durations
    // would be the one nondeterministic byte left in the journal.
    ev.wall_ms = obs::log::Logger::instance().fixed_clock() ? 0.0 : wall_ms;
    ev.detail = detail;
    events->append(ev);
  };

  FleetWorkSpec spec;
  try {
    spec = load_work_spec(spec_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[sweep_worker] bad spec: %s\n", e.what());
    return kWorkerExitSpecError;
  }
  if (shard >= spec.shards) {
    std::fprintf(stderr, "[sweep_worker] shard %zu out of range (spec has %zu)\n", shard,
                 spec.shards);
    return kWorkerExitSpecError;
  }

  // Resume: whatever a previous incarnation already logged stays done.
  const auto done = load_shard_log(out_path);
  journal(obs::fleet::FleetEventKind::kWorkerStart, -1, 0.0,
          "resumed=" + std::to_string(done.size()));
  obs::log::info("sweep_worker", "incarnation started",
                 {obs::log::kv("resumed", static_cast<std::int64_t>(done.size())),
                  obs::log::kv("owned", static_cast<std::int64_t>(spec.items_in_shard(shard)))});

  // One open log for the whole incarnation (an open/close per item would
  // blow the E24 overhead budget).
  std::unique_ptr<ShardLogWriter> log;
  try {
    log = std::make_unique<ShardLogWriter>(out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[sweep_worker] cannot open shard log: %s\n", e.what());
    return 70;  // transient I/O: supervisor restarts
  }

  WorkerHeartbeat hb;
  hb.pid = static_cast<long>(::getpid());
  bool stalled = false;  // kHeartbeatStall fired: pulse no more

  // Ownership comes from the spec (explicit cost-model assignment when
  // present, static i % shards otherwise), so a balanced plan reaches every
  // incarnation through the same file the work-list does.
  for (std::size_t i = 0; i < spec.n_items(); ++i) {
    if (!spec.owns(shard, i)) continue;
    if (done.find(i) != done.end()) continue;
    if (g_stop.load(std::memory_order_relaxed)) {
      hb.current_item = -1;
      if (!stalled) pulse(heartbeat_path, hb, /*force=*/true);
      journal(obs::fleet::FleetEventKind::kWorkerExit, -1, 0.0, "interrupted");
      return kWorkerExitInterrupted;
    }
    hb.current_item = static_cast<std::int64_t>(i);
    if (robust::fault_fire(robust::FaultSite::kHeartbeatStall)) stalled = true;
    if (!stalled) pulse(heartbeat_path, hb);
    journal(obs::fleet::FleetEventKind::kItemBegin, static_cast<std::int64_t>(i), 0.0, {});
    if (stalled) {
      // Chaos: the hung-worker case.  Stop pulsing and stop progressing —
      // the supervisor's watchdog must SIGKILL and restart us.  SIGTERM
      // still exits cleanly so an interrupted chaos run tears down fast.
      while (!g_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      journal(obs::fleet::FleetEventKind::kWorkerExit, -1, 0.0, "interrupted");
      return kWorkerExitInterrupted;
    }

    ItemResult item;
    try {
      item = run_fleet_item(spec, i);
    } catch (const std::exception& e) {
      // Deterministic failure: a restart (or the serial run) would fail the
      // same way, so tell the supervisor not to bother.
      obs::log::error("sweep_worker", "item failed deterministically",
                      {obs::log::kv("item", static_cast<std::int64_t>(i)),
                       obs::log::kv("error", std::string(e.what()))});
      return kWorkerExitItemFailed;
    }
    item.shard = static_cast<long>(shard);
    item.incarnation = incarnation;
    if (robust::fault_fire(robust::FaultSite::kWorkerCrashMidShard)) {
      // Chaos: die with the item computed but never committed — the restart
      // must recompute it and produce the same bytes.
      std::raise(SIGKILL);
    }
    try {
      log->append(item);
    } catch (const std::exception& e) {
      // I/O trouble is not the item's fault; exit restartable.
      obs::log::error("sweep_worker", "shard log append failed",
                      {obs::log::kv("item", static_cast<std::int64_t>(i)),
                       obs::log::kv("error", std::string(e.what()))});
      return 70;  // EX_SOFTWARE-ish: supervisor routes unknown codes to restart
    }
    journal(obs::fleet::FleetEventKind::kItemEnd, static_cast<std::int64_t>(i),
            item.wall_ns / 1e6, {});
    hb.items_done += 1;
    hb.busy_seconds += item.wall_ns / 1e9;
    hb.last_wall_ms = item.wall_ns / 1e6;
    hb.current_item = -1;
    pulse(heartbeat_path, hb);
  }

  hb.current_item = -1;
  hb.done = true;
  pulse(heartbeat_path, hb, /*force=*/true);
  journal(obs::fleet::FleetEventKind::kWorkerExit, -1, 0.0, "ok");
  obs::log::info("sweep_worker", "shard complete",
                 {obs::log::kv("items_done", hb.items_done)});
  return kWorkerExitOk;
}
