// Fleet worker: one shard of a supervised multi-process sweep.
//
// Spawned by robust::supervisor::Supervisor (or by hand, for debugging) as
//
//   sweep_worker --spec spec.json --shard S --out shard_S.jsonl
//                --heartbeat heartbeat_S.json [--fault SITE@INDEX]...
//
// The worker re-reads the fleet spec, resumes from its own shard log (items
// already logged by a previous incarnation are skipped), and then runs its
// statically-owned items — index i belongs to shard i % shards — appending
// one flushed JSONL line per completed item and rewriting its heartbeat file
// atomically at every item boundary.  All crash-recovery intelligence lives
// in the supervisor; the worker's only contract is "log each finished item
// before starting the next, and pulse".
//
// Signals: SIGTERM/SIGINT finish the in-flight item, flush its line, and
// exit kWorkerExitInterrupted (75) — a cancelled fleet resumes instead of
// recomputing (same clean-shutdown contract as datacenter_cluster
// --serve-metrics).  Exit codes are the protocol of
// src/robust/supervisor/shard_log.h: 64 bad spec/arguments, 65 deterministic
// item failure, 70 transient I/O trouble (supervisor restarts), 0 done.
//
// --fault installs a deterministic chaos plan (src/robust/fault_injection.h)
// by site name and 0-based call index, e.g. "worker_crash_mid_shard@1":
// compute the incarnation's second item, then SIGKILL yourself before
// committing it.  The supervisor passes these only on a shard's first
// incarnation, so injected crashes fire once and the respawn runs clean.
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "src/obs/metrics_registry.h"
#include "src/robust/fault_injection.h"
#include "src/robust/supervisor/item_runner.h"
#include "src/robust/supervisor/shard_log.h"
#include "src/robust/supervisor/work_spec.h"

using namespace speedscale;
using namespace speedscale::robust::supervisor;

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true, std::memory_order_relaxed); }

int usage() {
  std::fprintf(stderr,
               "usage: sweep_worker --spec FILE --shard N --out FILE --heartbeat FILE\n"
               "                    [--fault SITE@INDEX]...\n");
  return kWorkerExitSpecError;
}

/// "site_name@index" -> one fired call index in `plan`.
bool add_fault_arg(robust::FaultPlan& plan, const std::string& arg) {
  const std::size_t at = arg.find('@');
  if (at == std::string::npos || at == 0 || at + 1 >= arg.size()) return false;
  const auto site = robust::fault_site_by_name(arg.substr(0, at));
  if (!site) return false;
  char* end = nullptr;
  const unsigned long long index = std::strtoull(arg.c_str() + at + 1, &end, 10);
  if (end == nullptr || *end != '\0') return false;
  plan.fire_at[static_cast<std::size_t>(*site)].insert(index);
  return true;
}

/// Min gap between heartbeat writes.  A pulse is an atomic tmp+rename, and
/// items can be sub-millisecond; per-item pulses would dominate the fleet's
/// wall overhead (E24).  Liveness only needs the seq to advance well inside
/// the watchdog deadline (heartbeat_min_seconds floor: 5 s by default), so
/// 50 ms of staleness is invisible to the supervisor.
constexpr std::chrono::milliseconds kPulseInterval{50};

void pulse(const std::string& path, WorkerHeartbeat& hb, bool force = false) {
  static std::chrono::steady_clock::time_point last_write{};  // epoch: 1st fires
  const auto now = std::chrono::steady_clock::now();
  if (!force && now - last_write < kPulseInterval) return;
  last_write = now;
  hb.seq += 1;
  try {
    write_heartbeat(path, hb);
  } catch (const std::exception&) {
    // Heartbeats are liveness, not state — a failed pulse just looks like a
    // stall to the supervisor, which is the correct degraded behavior.
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path, out_path, heartbeat_path;
  std::size_t shard = 0;
  bool have_shard = false;
  robust::FaultPlan plan;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_path = argv[++i];
    } else if (arg == "--shard" && i + 1 < argc) {
      shard = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      have_shard = true;
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--heartbeat" && i + 1 < argc) {
      heartbeat_path = argv[++i];
    } else if (arg == "--fault" && i + 1 < argc) {
      if (!add_fault_arg(plan, argv[++i])) return usage();
    } else {
      return usage();
    }
  }
  if (spec_path.empty() || out_path.empty() || heartbeat_path.empty() || !have_shard) {
    return usage();
  }

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);
  obs::set_metrics_enabled(true);
  if (!plan.empty()) robust::FaultInjector::instance().install(std::move(plan));

  FleetWorkSpec spec;
  try {
    spec = load_work_spec(spec_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[sweep_worker] bad spec: %s\n", e.what());
    return kWorkerExitSpecError;
  }
  if (shard >= spec.shards) {
    std::fprintf(stderr, "[sweep_worker] shard %zu out of range (spec has %zu)\n", shard,
                 spec.shards);
    return kWorkerExitSpecError;
  }

  // Resume: whatever a previous incarnation already logged stays done.
  const auto done = load_shard_log(out_path);

  // One open log for the whole incarnation (an open/close per item would
  // blow the E24 overhead budget).
  std::unique_ptr<ShardLogWriter> log;
  try {
    log = std::make_unique<ShardLogWriter>(out_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[sweep_worker] cannot open shard log: %s\n", e.what());
    return 70;  // transient I/O: supervisor restarts
  }

  WorkerHeartbeat hb;
  hb.pid = static_cast<long>(::getpid());
  bool stalled = false;  // kHeartbeatStall fired: pulse no more

  for (std::size_t i = shard; i < spec.n_items(); i += spec.shards) {
    if (done.find(i) != done.end()) continue;
    if (g_stop.load(std::memory_order_relaxed)) {
      hb.current_item = -1;
      if (!stalled) pulse(heartbeat_path, hb, /*force=*/true);
      return kWorkerExitInterrupted;
    }
    hb.current_item = static_cast<std::int64_t>(i);
    if (robust::fault_fire(robust::FaultSite::kHeartbeatStall)) stalled = true;
    if (!stalled) pulse(heartbeat_path, hb);
    if (stalled) {
      // Chaos: the hung-worker case.  Stop pulsing and stop progressing —
      // the supervisor's watchdog must SIGKILL and restart us.  SIGTERM
      // still exits cleanly so an interrupted chaos run tears down fast.
      while (!g_stop.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
      return kWorkerExitInterrupted;
    }

    ItemResult item;
    try {
      item = run_fleet_item(spec, i);
    } catch (const std::exception& e) {
      // Deterministic failure: a restart (or the serial run) would fail the
      // same way, so tell the supervisor not to bother.
      std::fprintf(stderr, "[sweep_worker] item %zu failed: %s\n", i, e.what());
      return kWorkerExitItemFailed;
    }
    if (robust::fault_fire(robust::FaultSite::kWorkerCrashMidShard)) {
      // Chaos: die with the item computed but never committed — the restart
      // must recompute it and produce the same bytes.
      std::raise(SIGKILL);
    }
    try {
      log->append(item);
    } catch (const std::exception& e) {
      // I/O trouble is not the item's fault; exit restartable.
      std::fprintf(stderr, "[sweep_worker] shard log append failed: %s\n", e.what());
      return 70;  // EX_SOFTWARE-ish: supervisor routes unknown codes to restart
    }
    hb.items_done += 1;
    hb.busy_seconds += item.wall_ns / 1e9;
    hb.current_item = -1;
    pulse(heartbeat_path, hb);
  }

  hb.current_item = -1;
  hb.done = true;
  pulse(heartbeat_path, hb, /*force=*/true);
  return kWorkerExitOk;
}
