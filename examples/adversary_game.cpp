// The single-job game (Section 1.2): non-clairvoyance as an online game.
//
// The adversary keeps the job alive; the algorithm must keep adjusting its
// speed, staying competitive against the optimum of the *current* instance
// I(t) (the volume revealed so far) at every moment — because the adversary
// may stop at any time.  This example plays the game move by move: at a
// sequence of adversary stopping points it compares Algorithm NC's
// cost-so-far against the clairvoyant cost and the true offline optimum of
// the revealed instance.
#include <cmath>
#include <cstdio>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/bounds.h"
#include "src/opt/single_job_opt.h"

using namespace speedscale;

int main() {
  const double alpha = 2.0;
  std::printf("the single-job non-clairvoyant game (alpha = %.1f, unit density)\n\n", alpha);
  std::printf("the adversary announces 'not done yet' until volume V has been\n");
  std::printf("processed, then stops; NC must be competitive at EVERY stopping point.\n\n");

  std::printf("%10s %14s %14s %14s %10s %12s\n", "stop V", "opt(I(t))", "C cost", "NC cost",
              "NC/opt", "Thm 5 bound");
  for (double v : {0.01, 0.1, 0.5, 1.0, 2.0, 8.0, 64.0}) {
    const Instance revealed({Job{kNoJob, 0.0, v, 1.0}});
    const SingleJobFracOpt opt = single_job_frac_opt(v, 1.0, alpha);
    const RunResult c = run_c(revealed, alpha);
    const RunResult nc = run_nc_uniform(revealed, alpha);
    std::printf("%10.2f %14.5f %14.5f %14.5f %10.4f %12.2f\n", v, opt.objective,
                c.metrics.fractional_objective(), nc.metrics.fractional_objective(),
                nc.metrics.fractional_objective() / opt.objective,
                bounds::nc_uniform_fractional(alpha));
  }

  std::printf("\nwhy a fixed guess fails: commit to the optimal speed profile for a\n");
  std::printf("guessed volume Vg, and the adversary picks the true volume V adversarially.\n\n");
  std::printf("%10s %10s %16s %16s\n", "guess Vg", "true V", "committed cost", "vs NC");
  const double v_true_hi = 16.0, v_true_lo = 0.0625;
  for (double guess : {0.0625, 1.0, 16.0}) {
    for (double v_true : {v_true_lo, v_true_hi}) {
      // Committed policy: run the speed profile optimal for `guess`; if the
      // job survives, continue at the profile's final (tiny) speed — model
      // that as restarting the guess profile, a standard doubling strawman.
      // Cost here: optimal cost of the guess, then (if V > Vg) pay the
      // optimum again from scratch on the remainder, with the accumulated
      // delay multiplying the flow — a generous under-estimate.
      const SingleJobFracOpt g = single_job_frac_opt(guess, 1.0, alpha);
      double committed = g.objective;
      if (v_true > guess) {
        const SingleJobFracOpt rest = single_job_frac_opt(v_true - guess, 1.0, alpha);
        committed += rest.objective + (v_true - guess) * g.horizon;  // carried delay
      }
      const Instance revealed({Job{kNoJob, 0.0, std::max(v_true, guess), 1.0}});
      const RunResult nc = run_nc_uniform(Instance({Job{kNoJob, 0.0, v_true, 1.0}}), alpha);
      std::printf("%10.4f %10.4f %16.5f %16.5f\n", guess, v_true, committed,
                  nc.metrics.fractional_objective());
    }
  }
  std::printf("\nNC never guesses: its power tracks the processed weight, which is why\n");
  std::printf("its ratio is a uniform constant at every stopping point above.\n");
  return 0;
}
