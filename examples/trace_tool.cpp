// trace_tool: run any of the library's schedulers on a CSV job trace.
//
// Usage:
//   trace_tool <trace.csv> [--algo nc|c|nc-nonuniform|fixed|naive|doubling]
//              [--alpha A] [--speed S] [--out schedule.csv]
//              [--profile profile.csv] [--jobs jobs.csv]
//              [--trace events.jsonl] [--obs report.json]
//              [--chrome chrome.json] [--lenient] [--help]
//
// Trace format (header required):  id,release,volume,density
// Reads are strict by default: a malformed line is a typed, line-numbered
// error.  --lenient skips-and-counts bad lines instead (reported on stdout).
// With --out, writes the resulting piecewise schedule as CSV:
//   t0,t1,job,speed_law,param,rho
// With --trace, records the run's structured event stream as JSONL (one JSON
// object per line; scripts/plot_profiles.py can plot it directly) and prints
// a per-kind summary.  With --obs, writes the metrics-registry snapshot and
// profiler breakdown as one JSON report.  With --chrome, exports the event
// stream (plus profiler aggregates, if any) in the Chrome Trace Event Format
// for https://ui.perfetto.dev or chrome://tracing.
// Run with no arguments to see a demo on a generated trace; --help for the
// full flag reference (docs/observability.md has the long-form version).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/analysis/export.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/perf/chrome_trace.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/robust/diagnostics.h"
#include "src/workload/generators.h"
#include "src/workload/trace_io.h"

using namespace speedscale;

namespace {

const char* law_name(SpeedLaw law) {
  switch (law) {
    case SpeedLaw::kIdle:
      return "idle";
    case SpeedLaw::kConstant:
      return "constant";
    case SpeedLaw::kPowerDecay:
      return "power-decay";
    case SpeedLaw::kPowerGrow:
      return "power-grow";
  }
  return "?";
}

void write_schedule_csv(const std::string& path, const Schedule& sched) {
  std::ofstream f(path);
  if (!f) throw ModelError("cannot open " + path);
  f << "t0,t1,job,speed_law,param,rho\n";
  for (const Segment& s : sched.segments()) {
    f << s.t0 << ',' << s.t1 << ',' << s.job << ',' << law_name(s.law) << ',' << s.param << ','
      << s.rho << '\n';
  }
}

void print_flags(std::FILE* to) {
  std::fprintf(
      to,
      "usage: trace_tool [trace.csv] [flags]\n"
      "\n"
      "  trace.csv            input job trace (header: id,release,volume,density);\n"
      "                       omitted: demo on a generated 12-job trace\n"
      "  --algo NAME          scheduler: nc (default) | c | nc-nonuniform | fixed |\n"
      "                       naive | doubling\n"
      "  --alpha A            power exponent P = s^A (default 2)\n"
      "  --speed S            speed for --algo fixed (default 1)\n"
      "  --lenient            skip-and-count malformed trace lines instead of failing\n"
      "  --out FILE           write the schedule as CSV (t0,t1,job,speed_law,param,rho)\n"
      "  --profile FILE       write the piecewise speed profile as CSV\n"
      "  --jobs FILE          write the per-job summary (completion, flow) as CSV\n"
      "  --trace FILE         record the structured event stream as JSONL and print\n"
      "                       a per-kind summary\n"
      "  --obs FILE           write the metrics + profiler report as JSON\n"
      "  --chrome FILE        export the event stream as a Chrome Trace Event Format\n"
      "                       JSON for ui.perfetto.dev / chrome://tracing\n"
      "  --help, -h           this message\n"
      "\n"
      "docs/observability.md documents the flags and artifact formats in full.\n");
}

int usage() {
  print_flags(stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, algo = "nc", out_path, profile_path, jobs_path;
  std::string events_path, obs_path, chrome_path;
  double alpha = 2.0, speed = 1.0;
  bool lenient = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_flags(stdout);
      return 0;
    } else if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--algo" && i + 1 < argc) {
      algo = argv[++i];
    } else if (arg == "--alpha" && i + 1 < argc) {
      alpha = std::stod(argv[++i]);
    } else if (arg == "--speed" && i + 1 < argc) {
      speed = std::stod(argv[++i]);
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      jobs_path = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      events_path = argv[++i];
    } else if (arg == "--obs" && i + 1 < argc) {
      obs_path = argv[++i];
    } else if (arg == "--chrome" && i + 1 < argc) {
      chrome_path = argv[++i];
    } else if (arg.rfind("--", 0) == 0) {
      return usage();
    } else {
      trace_path = arg;
    }
  }

  try {
    Instance inst;
    if (trace_path.empty()) {
      std::printf("(no trace given: demo on a generated 12-job trace; see --help)\n\n");
      inst = workload::generate({.n_jobs = 12, .arrival_rate = 1.5, .seed = 1});
    } else {
      workload::TraceReadOptions read_opts;
      read_opts.mode = lenient ? workload::TraceReadMode::kLenient
                               : workload::TraceReadMode::kStrict;
      workload::TraceReadStats stats;
      inst = workload::read_trace_file(trace_path, read_opts, &stats);
      if (stats.lines_skipped > 0) {
        std::printf("lenient read: kept %zu job(s), skipped %zu bad line(s)\n",
                    stats.lines_read, stats.lines_skipped);
      }
    }

    // Observability plumbing: a JSONL sink plus a human summary when --trace
    // is given; an in-memory ring for --chrome (the exporter needs the whole
    // stream at once); hot-path metrics + profiling when --obs is given.
    std::shared_ptr<obs::JsonlSink> jsonl;
    std::shared_ptr<obs::SummarySink> summary;
    std::shared_ptr<obs::RingBufferSink> ring;
    if (!events_path.empty()) {
      jsonl = std::make_shared<obs::JsonlSink>(events_path);
      summary = std::make_shared<obs::SummarySink>();
      obs::Tracer::instance().add_sink(jsonl);
      obs::Tracer::instance().add_sink(summary);
    }
    if (!chrome_path.empty()) {
      ring = std::make_shared<obs::RingBufferSink>(1 << 20);
      obs::Tracer::instance().add_sink(ring);
    }
    if (jsonl || ring) {
      obs::Tracer::instance().set_enabled(true);
      // Leading meta event: lets consumers (plot_profiles.py) recover the run
      // configuration without a side channel.  value = alpha, aux = job count.
      TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0, .value = alpha,
                  .aux = static_cast<double>(inst.size()), .label = "trace_tool");
    }
    if (!obs_path.empty()) obs::set_metrics_enabled(true);

    Schedule sched(alpha);
    Metrics metrics;
    if (algo == "nc") {
      auto r = run_nc_uniform(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "c") {
      auto r = run_c(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "nc-nonuniform") {
      auto r = run_nc_nonuniform(inst, alpha);
      sched = std::move(r.result.schedule);
      metrics = r.result.metrics;
    } else if (algo == "fixed") {
      auto r = run_fixed_speed(inst, alpha, speed);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "naive") {
      auto r = run_naive_nc(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "doubling") {
      auto r = run_doubling_nc(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else {
      return usage();
    }

    if (jsonl || ring) {
      TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = sched.makespan(), .value = alpha,
                  .aux = static_cast<double>(inst.size()), .label = "trace_tool.end");
      obs::Tracer::instance().set_enabled(false);
      obs::Tracer::instance().flush();
      if (jsonl) obs::Tracer::instance().remove_sink(jsonl.get());
      if (summary) obs::Tracer::instance().remove_sink(summary.get());
      if (ring) obs::Tracer::instance().remove_sink(ring.get());
    }

    std::printf("algo=%s alpha=%.3g jobs=%zu makespan=%.6g\n", algo.c_str(), alpha, inst.size(),
                sched.makespan());
    std::printf("energy            = %.6g\n", metrics.energy);
    std::printf("fractional flow   = %.6g\n", metrics.fractional_flow);
    std::printf("integral flow     = %.6g\n", metrics.integral_flow);
    std::printf("frac objective    = %.6g\n", metrics.fractional_objective());
    std::printf("int objective     = %.6g\n", metrics.integral_objective());
    if (!out_path.empty()) {
      write_schedule_csv(out_path, sched);
      std::printf("schedule written to %s (%zu segments)\n", out_path.c_str(),
                  sched.segments().size());
    }
    if (!profile_path.empty()) {
      analysis::export_speed_profile_file(profile_path, sched);
      std::printf("speed profile written to %s\n", profile_path.c_str());
    }
    if (!jobs_path.empty()) {
      std::ofstream jf(jobs_path);
      if (!jf) throw ModelError("cannot open " + jobs_path);
      analysis::export_job_summary(jf, inst, sched);
      std::printf("job summary written to %s\n", jobs_path.c_str());
    }
    if (jsonl) {
      jsonl->close();  // commits the ".tmp" sibling to events_path
      std::printf("event trace written to %s (%zu events)\n%s", events_path.c_str(),
                  jsonl->lines(), summary->summary().c_str());
    }
    if (!obs_path.empty()) {
      obs::write_observability_report_file(obs_path);
      std::printf("observability report written to %s\n", obs_path.c_str());
    }
    if (ring) {
      if (ring->dropped() > 0) {
        std::printf("note: chrome trace is truncated to the most recent %zu events "
                    "(%zu dropped)\n",
                    ring->capacity(), ring->dropped());
      }
      obs::perf::write_chrome_trace_file(chrome_path, ring->events(),
                                         obs::profiler().snapshot());
      std::printf("chrome trace written to %s (%zu events; open in ui.perfetto.dev)\n",
                  chrome_path.c_str(), ring->size());
    }
  } catch (const workload::TraceIoError& e) {
    const robust::Diagnostic& d = e.diagnostic();
    std::fprintf(stderr, "error [%s] %s (%s)\n", robust::error_code_name(d.code),
                 d.message.c_str(), d.context.c_str());
    std::fprintf(stderr, "hint: --lenient skips malformed lines instead of failing\n");
    return 1;
  } catch (const robust::RobustError& e) {
    const robust::Diagnostic& d = e.diagnostic();
    std::fprintf(stderr, "error [%s] %s (%s)\n", robust::error_code_name(d.code),
                 d.message.c_str(), d.context.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
