// trace_tool: run any of the library's schedulers on a CSV job trace, or
// replay a recorded trace into a competitiveness-certificate report.
//
// Usage:
//   trace_tool <trace.csv> [--algo nc|c|nc-nonuniform|fixed|naive|doubling]
//              [--alpha A] [--speed S] [--out schedule.csv]
//              [--profile profile.csv] [--jobs jobs.csv]
//              [--trace events.jsonl] [--obs report.json]
//              [--chrome chrome.json] [--cert-out certs.jsonl]
//              [--fail-on-violation] [--lenient] [--help]
//   trace_tool --certify recorded.{jsonl|json} [--cert-out certs.jsonl]
//              [--alpha A] [--jobs N] [--fail-on-violation]
//
// Trace format (header required):  id,release,volume,density
// Reads are strict by default: a malformed line is a typed, line-numbered
// error.  --lenient skips-and-counts bad lines instead (reported on stdout).
// With --out, writes the resulting piecewise schedule as CSV:
//   t0,t1,job,speed_law,param,rho
// With --trace, records the run's structured event stream as JSONL (one JSON
// object per line; scripts/plot_profiles.py can plot it directly) and prints
// a per-kind summary.  With --obs, writes the metrics-registry snapshot and
// profiler breakdown as one JSON report.  With --chrome, exports the event
// stream (plus profiler aggregates, if any) in the Chrome Trace Event Format
// for https://ui.perfetto.dev or chrome://tracing.
//
// Certificates (src/obs/cert/, docs/observability.md): --certify FILE
// replays a recorded event trace (JSONL from --trace, or a Chrome trace from
// --chrome) through the potential-function ledger and prints the certificate
// summary, running no scheduler; --cert-out on a live run certifies the
// run's own event stream and writes the per-event certificate JSONL
// (scripts/plot_certificates.py plots it).  --fail-on-violation exits with
// code 3 when any certificate has negative slack.
// Run with no arguments to see a demo on a generated trace; --help for the
// full flag reference (docs/observability.md has the long-form version).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/baselines.h"
#include "src/analysis/export.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/json_min.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/perf/chrome_trace.h"
#include "src/obs/profiler.h"
#include "src/obs/report.h"
#include "src/obs/trace.h"
#include "src/opt/opt_cache.h"
#include "src/robust/diagnostics.h"
#include "src/workload/generators.h"
#include "src/workload/trace_io.h"

using namespace speedscale;

namespace {

const char* law_name(SpeedLaw law) {
  switch (law) {
    case SpeedLaw::kIdle:
      return "idle";
    case SpeedLaw::kConstant:
      return "constant";
    case SpeedLaw::kPowerDecay:
      return "power-decay";
    case SpeedLaw::kPowerGrow:
      return "power-grow";
  }
  return "?";
}

void write_schedule_csv(const std::string& path, const Schedule& sched) {
  std::ofstream f(path);
  if (!f) throw ModelError("cannot open " + path);
  f << "t0,t1,job,speed_law,param,rho\n";
  for (const Segment& s : sched.segments()) {
    f << s.t0 << ',' << s.t1 << ',' << s.job << ',' << law_name(s.law) << ',' << s.param << ','
      << s.rho << '\n';
  }
}

void print_flags(std::FILE* to) {
  std::fprintf(
      to,
      "usage: trace_tool [trace.csv] [flags]\n"
      "\n"
      "  trace.csv            input job trace (header: id,release,volume,density);\n"
      "                       omitted: demo on a generated 12-job trace\n"
      "  --algo NAME          scheduler: nc (default) | c | nc-nonuniform | fixed |\n"
      "                       naive | doubling\n"
      "  --alpha A            power exponent P = s^A (default 2)\n"
      "  --speed S            speed for --algo fixed (default 1)\n"
      "  --lenient            skip-and-count malformed trace lines instead of failing\n"
      "  --out FILE           write the schedule as CSV (t0,t1,job,speed_law,param,rho)\n"
      "  --profile FILE       write the piecewise speed profile as CSV\n"
      "  --jobs FILE          write the per-job summary (completion, flow) as CSV;\n"
      "                       in --certify mode: a worker-thread count N for the\n"
      "                       ledger's prefix OPT solves (same certificates at any N)\n"
      "  --trace FILE         record the structured event stream as JSONL and print\n"
      "                       a per-kind summary\n"
      "  --obs FILE           write the metrics + profiler report as JSON\n"
      "  --chrome FILE        export the event stream as a Chrome Trace Event Format\n"
      "                       JSON for ui.perfetto.dev / chrome://tracing\n"
      "  --certify FILE       replay a recorded trace (JSONL from --trace, or a\n"
      "                       Chrome trace from --chrome) into a certificate report;\n"
      "                       runs no scheduler\n"
      "  --cert-out FILE      write the per-event certificate JSONL; on a live run\n"
      "                       this certifies the run's own event stream\n"
      "  --fail-on-violation  exit with code 3 if any certificate has negative slack\n"
      "  --help, -h           this message\n"
      "\n"
      "exit codes: 0 ok, 1 error, 2 usage, 3 certificate violation.\n"
      "docs/observability.md documents the flags and artifact formats in full.\n");
}

int usage(const char* complaint = nullptr, const char* flag = nullptr) {
  if (complaint != nullptr) {
    std::fprintf(stderr, "trace_tool: %s%s%s\n\n", complaint, flag != nullptr ? ": " : "",
                 flag != nullptr ? flag : "");
  }
  print_flags(stderr);
  return 2;
}

/// Replays a recorded trace file (JSONL event stream or Chrome Trace Event
/// Format — sniffed by parsing) into events plus the recorded alpha.
obs::cert::ReplayedTrace replay_recorded_trace(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw ModelError("cannot open " + path);
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string text = ss.str();
  // A Chrome trace is one JSON document with a traceEvents array; a JSONL
  // stream fails the whole-file parse on its second line.
  try {
    const obs::JsonValue doc = obs::parse_json(text);
    if (doc.is_object() && doc.find("traceEvents") != nullptr) {
      return obs::cert::replay_chrome_trace(text);
    }
  } catch (const ModelError&) {
  }
  std::istringstream lines(text);
  return obs::cert::replay_jsonl_trace(lines);
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_path, algo = "nc", out_path, profile_path, jobs_path;
  std::string events_path, obs_path, chrome_path, certify_path, cert_out;
  double alpha = 2.0, speed = 1.0;
  bool lenient = false, fail_on_violation = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const bool has_arg = i + 1 < argc;
    if (arg == "--help" || arg == "-h") {
      print_flags(stdout);
      return 0;
    } else if (arg == "--lenient") {
      lenient = true;
    } else if (arg == "--fail-on-violation") {
      fail_on_violation = true;
    } else if (arg == "--algo" || arg == "--alpha" || arg == "--speed" || arg == "--out" ||
               arg == "--profile" || arg == "--jobs" || arg == "--trace" || arg == "--obs" ||
               arg == "--chrome" || arg == "--certify" || arg == "--cert-out") {
      if (!has_arg) return usage("flag requires an argument", arg.c_str());
      const std::string val = argv[++i];
      if (arg == "--algo") {
        algo = val;
      } else if (arg == "--alpha") {
        alpha = std::stod(val);
      } else if (arg == "--speed") {
        speed = std::stod(val);
      } else if (arg == "--out") {
        out_path = val;
      } else if (arg == "--profile") {
        profile_path = val;
      } else if (arg == "--jobs") {
        jobs_path = val;
      } else if (arg == "--trace") {
        events_path = val;
      } else if (arg == "--obs") {
        obs_path = val;
      } else if (arg == "--chrome") {
        chrome_path = val;
      } else if (arg == "--certify") {
        certify_path = val;
      } else {
        cert_out = val;
      }
    } else if (arg.rfind("-", 0) == 0) {
      return usage("unknown flag", arg.c_str());
    } else {
      trace_path = arg;
    }
  }

  // --certify: pure replay of a recorded trace — no scheduler runs.  In this
  // mode --jobs is a worker count for the ledger's prefix convex solves (the
  // certificates are byte-identical at any count), not a jobs.csv path.
  if (!certify_path.empty()) {
    obs::cert::CertOptions copts;
    if (!jobs_path.empty()) {
      char* end = nullptr;
      const long n = std::strtol(jobs_path.c_str(), &end, 10);
      if (end == nullptr || *end != '\0' || n < 1) {
        return usage("--jobs in --certify mode takes a worker count", jobs_path.c_str());
      }
      copts.solver_jobs = static_cast<int>(n);
    }
    try {
      const obs::cert::ReplayedTrace replayed = replay_recorded_trace(certify_path);
      const double a = replayed.alpha > 1.0 ? replayed.alpha : alpha;
      // Memoize the prefix solves: replays of overlapping streams (or the
      // C + NC pair of one instance) repeat prefixes exactly.
      OptSolveCache opt_cache(512);
      ScopedOptSolveCache opt_cache_scope(&opt_cache);
      const obs::cert::CertificateLedger ledger =
          obs::cert::certify_events(replayed.events, a, copts);
      std::printf("certified %s: %zu event(s), alpha=%.3g\n%s", certify_path.c_str(),
                  replayed.events.size(), a, ledger.summary().c_str());
      if (!cert_out.empty()) {
        obs::cert::write_certificates_jsonl_file(cert_out, ledger);
        std::printf("certificates written to %s (%zu records)\n", cert_out.c_str(),
                    ledger.records.size());
      }
      if (fail_on_violation && ledger.violations() > 0) {
        std::fprintf(stderr, "trace_tool: %zu certificate(s) with negative slack\n",
                     ledger.violations());
        return 3;
      }
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  try {
    Instance inst;
    if (trace_path.empty()) {
      std::printf("(no trace given: demo on a generated 12-job trace; see --help)\n\n");
      inst = workload::generate({.n_jobs = 12, .arrival_rate = 1.5, .seed = 1});
    } else {
      workload::TraceReadOptions read_opts;
      read_opts.mode = lenient ? workload::TraceReadMode::kLenient
                               : workload::TraceReadMode::kStrict;
      workload::TraceReadStats stats;
      inst = workload::read_trace_file(trace_path, read_opts, &stats);
      if (stats.lines_skipped > 0) {
        std::printf("lenient read: kept %zu job(s), skipped %zu bad line(s)\n",
                    stats.lines_read, stats.lines_skipped);
      }
    }

    // Observability plumbing: a JSONL sink plus a human summary when --trace
    // is given; an in-memory ring for --chrome (the exporter needs the whole
    // stream at once); hot-path metrics + profiling when --obs is given.
    std::shared_ptr<obs::JsonlSink> jsonl;
    std::shared_ptr<obs::SummarySink> summary;
    std::shared_ptr<obs::RingBufferSink> ring;
    if (!events_path.empty()) {
      jsonl = std::make_shared<obs::JsonlSink>(events_path);
      summary = std::make_shared<obs::SummarySink>();
      obs::Tracer::instance().add_sink(jsonl);
      obs::Tracer::instance().add_sink(summary);
    }
    if (!chrome_path.empty() || !cert_out.empty()) {
      // The Chrome exporter and the certificate ledger both need the whole
      // event stream at once.
      ring = std::make_shared<obs::RingBufferSink>(1 << 20);
      obs::Tracer::instance().add_sink(ring);
    }
    if (jsonl || ring) {
      obs::Tracer::instance().set_enabled(true);
      // Leading meta event: lets consumers (plot_profiles.py) recover the run
      // configuration without a side channel.  value = alpha, aux = job count.
      TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = 0.0, .value = alpha,
                  .aux = static_cast<double>(inst.size()), .label = "trace_tool");
    }
    if (!obs_path.empty()) obs::set_metrics_enabled(true);

    Schedule sched(alpha);
    Metrics metrics;
    if (algo == "nc") {
      auto r = run_nc_uniform(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "c") {
      auto r = run_c(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "nc-nonuniform") {
      auto r = run_nc_nonuniform(inst, alpha);
      sched = std::move(r.result.schedule);
      metrics = r.result.metrics;
    } else if (algo == "fixed") {
      auto r = run_fixed_speed(inst, alpha, speed);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "naive") {
      auto r = run_naive_nc(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else if (algo == "doubling") {
      auto r = run_doubling_nc(inst, alpha);
      sched = std::move(r.schedule);
      metrics = r.metrics;
    } else {
      return usage();
    }

    // Live-run certification: replay the run's own event stream through the
    // potential-function ledger.  Emitted while the sinks are still attached
    // so the "cert.slack"/"cert.phi" series land in the JSONL and Chrome
    // artifacts (the tracker checkpoints the sinks as it streams).
    obs::cert::CertificateLedger cert_ledger;
    bool certified = false;
    if (!cert_out.empty()) {
      obs::cert::CertOptions copts;
      copts.emit_trace_events = true;
      cert_ledger = obs::cert::certify_events(ring->events(), alpha, copts);
      certified = true;
    }

    if (jsonl || ring) {
      TRACE_EVENT(.kind = obs::EventKind::kPhaseBoundary, .t = sched.makespan(), .value = alpha,
                  .aux = static_cast<double>(inst.size()), .label = "trace_tool.end");
      obs::Tracer::instance().set_enabled(false);
      obs::Tracer::instance().flush();
      if (jsonl) obs::Tracer::instance().remove_sink(jsonl.get());
      if (summary) obs::Tracer::instance().remove_sink(summary.get());
      if (ring) obs::Tracer::instance().remove_sink(ring.get());
    }

    std::printf("algo=%s alpha=%.3g jobs=%zu makespan=%.6g\n", algo.c_str(), alpha, inst.size(),
                sched.makespan());
    std::printf("energy            = %.6g\n", metrics.energy);
    std::printf("fractional flow   = %.6g\n", metrics.fractional_flow);
    std::printf("integral flow     = %.6g\n", metrics.integral_flow);
    std::printf("frac objective    = %.6g\n", metrics.fractional_objective());
    std::printf("int objective     = %.6g\n", metrics.integral_objective());
    if (!out_path.empty()) {
      write_schedule_csv(out_path, sched);
      std::printf("schedule written to %s (%zu segments)\n", out_path.c_str(),
                  sched.segments().size());
    }
    if (!profile_path.empty()) {
      analysis::export_speed_profile_file(profile_path, sched);
      std::printf("speed profile written to %s\n", profile_path.c_str());
    }
    if (!jobs_path.empty()) {
      std::ofstream jf(jobs_path);
      if (!jf) throw ModelError("cannot open " + jobs_path);
      analysis::export_job_summary(jf, inst, sched);
      std::printf("job summary written to %s\n", jobs_path.c_str());
    }
    if (jsonl) {
      jsonl->close();  // commits the ".tmp" sibling to events_path
      std::printf("event trace written to %s (%zu events)\n%s", events_path.c_str(),
                  jsonl->lines(), summary->summary().c_str());
    }
    if (!obs_path.empty()) {
      obs::write_observability_report_file(obs_path);
      std::printf("observability report written to %s\n", obs_path.c_str());
    }
    if (ring && !chrome_path.empty()) {
      if (ring->dropped() > 0) {
        std::printf("note: chrome trace is truncated to the most recent %zu events "
                    "(%zu dropped)\n",
                    ring->capacity(), ring->dropped());
      }
      obs::perf::write_chrome_trace_file(chrome_path, ring->events(),
                                         obs::profiler().snapshot());
      std::printf("chrome trace written to %s (%zu events; open in ui.perfetto.dev)\n",
                  chrome_path.c_str(), ring->size());
    }
    if (certified) {
      obs::cert::write_certificates_jsonl_file(cert_out, cert_ledger);
      std::printf("certificates written to %s (%zu records)\n%s", cert_out.c_str(),
                  cert_ledger.records.size(), cert_ledger.summary().c_str());
      if (fail_on_violation && cert_ledger.violations() > 0) {
        std::fprintf(stderr, "trace_tool: %zu certificate(s) with negative slack\n",
                     cert_ledger.violations());
        return 3;
      }
    }
  } catch (const workload::TraceIoError& e) {
    const robust::Diagnostic& d = e.diagnostic();
    std::fprintf(stderr, "error [%s] %s (%s)\n", robust::error_code_name(d.code),
                 d.message.c_str(), d.context.c_str());
    std::fprintf(stderr, "hint: --lenient skips malformed lines instead of failing\n");
    return 1;
  } catch (const robust::RobustError& e) {
    const robust::Diagnostic& d = e.diagnostic();
    std::fprintf(stderr, "error [%s] %s (%s)\n", robust::error_code_name(d.code),
                 d.message.c_str(), d.context.c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
