// Cloud billing: the paper's motivating application (Section 1).
//
// A cloud customer pays (lambda - rho * t_delay) per unit volume.  The only
// part the scheduler controls is the penalty rho * F[j] * V[j] — weighted
// flow-time with density rho known at submission (it's in the contract!)
// and volume unknown until the job finishes.  Adding the datacenter's
// energy bill gives exactly the paper's objective.
//
// This example prices a synthetic trace of interactive and batch requests
// under three operating policies and prints the monthly-style bill.
#include <cstdio>

#include "src/algo/algorithm_c.h"
#include "src/algo/algorithm_nc_nonuniform.h"
#include "src/algo/baselines.h"
#include "src/workload/generators.h"

using namespace speedscale;

int main() {
  const double alpha = 3.0;  // cube-law power, the classical CMOS model

  workload::CloudParams cp;
  cp.n_interactive = 40;
  cp.n_batch = 12;
  cp.interactive_rho = 8.0;  // latency-sensitive: high contractual penalty
  cp.batch_rho = 0.5;        // batch: cheap to delay
  cp.arrival_rate = 2.5;
  cp.seed = 2026;
  const Instance trace = workload::cloud_trace(cp);

  std::printf("cloud trace: %zu requests (%d interactive @ rho=%.1f, %d batch @ rho=%.1f)\n\n",
              trace.size(), cp.n_interactive, cp.interactive_rho, cp.n_batch, cp.batch_rho);

  struct Row {
    const char* name;
    Metrics m;
  };
  std::vector<Row> rows;

  // What the paper's non-clairvoyant algorithm achieves, knowing only the
  // contractual densities.
  const NCNonUniformRun nc = run_nc_nonuniform(trace, alpha);
  rows.push_back({"NC (known density, unknown volume)", nc.result.metrics});

  // The clairvoyant bound: would require knowing every job's volume at
  // submission (not available in practice).
  const RunResult c = run_c(trace, alpha);
  rows.push_back({"C  (clairvoyant oracle)", c.metrics});

  // The no-speed-scaling strawman: a fixed-frequency machine provisioned at
  // twice the average demand.
  const double avg_speed = trace.total_volume() / (trace.max_release() + 1.0);
  const RunResult fixed = run_fixed_speed(trace, alpha, 2.0 * avg_speed);
  rows.push_back({"fixed frequency (2x avg demand)", fixed.metrics});

  std::printf("%-36s %12s %14s %14s\n", "policy", "energy", "delay penalty", "total bill");
  for (const Row& r : rows) {
    std::printf("%-36s %12.2f %14.2f %14.2f\n", r.name, r.m.energy, r.m.fractional_flow,
                r.m.fractional_objective());
  }
  std::printf("\nNC runs blind on volumes yet lands within a constant factor of the\n");
  std::printf("clairvoyant bill, because it reconstructs the clairvoyant power curve\n");
  std::printf("from densities alone (the paper's headline result).\n");
  return 0;
}
