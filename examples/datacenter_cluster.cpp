// Datacenter cluster: scheduling on identical parallel machines (Section 6).
//
// Shows the two dispatch regimes the paper separates:
//  * without immediate dispatch, NC-PAR (global FIFO queue + per-machine
//    Algorithm NC speeds) matches the clairvoyant greedy dispatcher C-PAR
//    job-for-job and is O(alpha)-competitive (Theorem 17);
//  * with immediate dispatch, ANY deterministic non-clairvoyant dispatcher
//    gets fooled by the Omega(k^{1-1/alpha}) adversary.
#include <cstdio>

#include "src/algo/dispatch.h"
#include "src/algo/parallel.h"
#include "src/workload/generators.h"

using namespace speedscale;

int main() {
  const double alpha = 2.0;
  const int k = 8;

  const Instance inst = workload::generate({.n_jobs = 96, .arrival_rate = 6.0, .seed = 31});
  std::printf("cluster of %d speed-scalable machines, %zu jobs, alpha = %.1f\n\n", k,
              inst.size(), alpha);

  const ParallelRun nc = run_nc_par(inst, alpha, k);
  const ParallelRun c = run_c_par(inst, alpha, k);

  int matches = 0;
  for (std::size_t j = 0; j < inst.size(); ++j) {
    if (nc.assignment[j] == c.assignment[j]) ++matches;
  }
  std::printf("NC-PAR vs clairvoyant C-PAR:\n");
  std::printf("  identical machine assignments : %d / %zu   [Lemma 20]\n", matches, inst.size());
  std::printf("  energy                        : %.4f vs %.4f   [equal, Lemma 21]\n",
              nc.metrics.energy, c.metrics.energy);
  std::printf("  fractional flow               : %.4f vs %.4f (ratio %.4f = 1/(1-1/a))\n",
              nc.metrics.fractional_flow, c.metrics.fractional_flow,
              nc.metrics.fractional_flow / c.metrics.fractional_flow);
  std::printf("  fractional objective          : %.4f vs %.4f\n\n",
              nc.metrics.fractional_objective(), c.metrics.fractional_objective());

  // Per-machine load summary.
  std::printf("per-machine job counts (NC-PAR): ");
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  for (MachineId m : nc.assignment) ++count[static_cast<std::size_t>(m)];
  for (int i = 0; i < k; ++i) std::printf("%d ", count[static_cast<std::size_t>(i)]);
  std::printf("\n\n");

  std::printf("why the queue matters — the immediate-dispatch adversary (Section 6):\n");
  std::printf("  k    cost(dispatched)/cost(spread)   k^(1-1/alpha)\n");
  for (int kk : {2, 4, 8, 16}) {
    const AdversaryOutcome out = run_sec6_adversary(kk, alpha, DispatchPolicy::kRoundRobin);
    std::printf("  %-4d %10.3f %28.3f\n", kk, out.ratio,
                std::pow(static_cast<double>(kk), 1.0 - 1.0 / alpha));
  }
  std::printf("\nHolding jobs in a shared queue (no immediate dispatch) is what lets the\n");
  std::printf("non-clairvoyant cluster avoid this penalty entirely.\n");
  return 0;
}
