// Datacenter cluster: scheduling on identical parallel machines (Section 6),
// and the repo's live-telemetry demo.
//
// Default (no flags): the one-shot comparison the example always printed —
//  * without immediate dispatch, NC-PAR (global FIFO queue + per-machine
//    Algorithm NC speeds) matches the clairvoyant greedy dispatcher C-PAR
//    job-for-job and is O(alpha)-competitive (Theorem 17);
//  * with immediate dispatch, ANY deterministic non-clairvoyant dispatcher
//    gets fooled by the Omega(k^{1-1/alpha}) adversary.
//
// With --serve-metrics, the example becomes a long-running simulated
// cluster: each round generates a fresh workload, runs NC-PAR vs C-PAR,
// certifies a single-machine NC run (certificate slack published as
// cluster.cert.* gauges), and the live telemetry plane (src/obs/live/)
// serves /metrics, /snapshot.json and /series.json while it simulates.
// SIGINT/SIGTERM shut everything down cleanly (exit 0) — the contract the
// CI telemetry smoke test asserts.
//
//   datacenter_cluster --serve-metrics 0 --port-file /tmp/addr --rounds 0
//   telemetry_tool --connect $(cat /tmp/addr) --watch
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "src/algo/algorithm_nc_uniform.h"
#include "src/algo/dispatch.h"
#include "src/algo/parallel.h"
#include "src/obs/cert/potential_tracker.h"
#include "src/obs/live/telemetry_hub.h"
#include "src/obs/live/telemetry_server.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/trace.h"
#include "src/robust/atomic_io.h"
#include "src/workload/generators.h"

using namespace speedscale;

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

int run_demo() {
  const double alpha = 2.0;
  const int k = 8;

  const Instance inst = workload::generate({.n_jobs = 96, .arrival_rate = 6.0, .seed = 31});
  std::printf("cluster of %d speed-scalable machines, %zu jobs, alpha = %.1f\n\n", k,
              inst.size(), alpha);

  const ParallelRun nc = run_nc_par(inst, alpha, k);
  const ParallelRun c = run_c_par(inst, alpha, k);

  int matches = 0;
  for (std::size_t j = 0; j < inst.size(); ++j) {
    if (nc.assignment[j] == c.assignment[j]) ++matches;
  }
  std::printf("NC-PAR vs clairvoyant C-PAR:\n");
  std::printf("  identical machine assignments : %d / %zu   [Lemma 20]\n", matches, inst.size());
  std::printf("  energy                        : %.4f vs %.4f   [equal, Lemma 21]\n",
              nc.metrics.energy, c.metrics.energy);
  std::printf("  fractional flow               : %.4f vs %.4f (ratio %.4f = 1/(1-1/a))\n",
              nc.metrics.fractional_flow, c.metrics.fractional_flow,
              nc.metrics.fractional_flow / c.metrics.fractional_flow);
  std::printf("  fractional objective          : %.4f vs %.4f\n\n",
              nc.metrics.fractional_objective(), c.metrics.fractional_objective());

  // Per-machine load summary.
  std::printf("per-machine job counts (NC-PAR): ");
  std::vector<int> count(static_cast<std::size_t>(k), 0);
  for (MachineId m : nc.assignment) ++count[static_cast<std::size_t>(m)];
  for (int i = 0; i < k; ++i) std::printf("%d ", count[static_cast<std::size_t>(i)]);
  std::printf("\n\n");

  std::printf("why the queue matters — the immediate-dispatch adversary (Section 6):\n");
  std::printf("  k    cost(dispatched)/cost(spread)   k^(1-1/alpha)\n");
  for (int kk : {2, 4, 8, 16}) {
    const AdversaryOutcome out = run_sec6_adversary(kk, alpha, DispatchPolicy::kRoundRobin);
    std::printf("  %-4d %10.3f %28.3f\n", kk, out.ratio,
                std::pow(static_cast<double>(kk), 1.0 - 1.0 / alpha));
  }
  std::printf("\nHolding jobs in a shared queue (no immediate dispatch) is what lets the\n");
  std::printf("non-clairvoyant cluster avoid this penalty entirely.\n");
  return 0;
}

/// One simulated round: fresh workload, NC-PAR vs C-PAR, a certified
/// single-machine NC run.  Publishes cluster.* gauges and bumps the
/// cluster.rounds / cluster.jobs_simulated counters.
void simulate_round(long round, double alpha, int k) {
  const Instance inst = workload::generate({.n_jobs = 48,
                                            .arrival_rate = 4.0 + 0.5 * static_cast<double>(round % 5),
                                            .seed = 31 + static_cast<std::uint64_t>(round)});
  const ParallelRun nc = run_nc_par(inst, alpha, k);
  const ParallelRun c = run_c_par(inst, alpha, k);

  obs::MetricsRegistry& reg = obs::registry();
  reg.counter("cluster.rounds").add(1);
  reg.counter("cluster.jobs_simulated").add(static_cast<std::int64_t>(inst.size()));
  reg.gauge("cluster.machines").set(static_cast<double>(k));
  reg.gauge("cluster.round_jobs").set(static_cast<double>(inst.size()));
  reg.gauge("cluster.energy_nc").set(nc.metrics.energy);
  reg.gauge("cluster.frac_flow_ratio")
      .set(nc.metrics.fractional_flow / c.metrics.fractional_flow);

  // Certificate slack, live: capture a single-machine NC run on this
  // thread (exclusive capture — the sampler thread never sees the events)
  // and replay it through the potential-function ledger.
  obs::RingBufferSink ring(1 << 14);
  {
    obs::ScopedThreadCapture capture(&ring);
    (void)run_nc_uniform(inst, alpha);
  }
  obs::cert::CertOptions copts;
  copts.opt_lb = obs::cert::OptLbMode::kSingleJob;
  const obs::cert::CertificateLedger ledger = obs::cert::certify_events(ring.events(), alpha, copts);
  reg.gauge("cluster.cert.records").set(static_cast<double>(ledger.records.size()));
  reg.gauge("cluster.cert.violations").set(static_cast<double>(ledger.violations()));
  reg.gauge("cluster.cert.min_slack_frac").set(ledger.min_slack_frac);
  reg.gauge("cluster.cert.min_slack_int").set(ledger.min_slack_int);
}

int run_serve(const std::string& bind, const std::string& port_file, long rounds,
              long period_ms, long round_sleep_ms, const std::string& jsonl_path) {
  std::signal(SIGINT, handle_signal);
  std::signal(SIGTERM, handle_signal);
  obs::set_observability_enabled(true);

  obs::live::TelemetryOptions topts;
  topts.period = std::chrono::milliseconds(period_ms);
  topts.jsonl_path = jsonl_path;
  obs::live::TelemetryHub hub(topts);
  hub.start();

  obs::live::TelemetryServerOptions sopts;
  sopts.bind = bind;
  obs::live::TelemetryServer server(hub, sopts);
  server.start();

  std::printf("serving telemetry at %s (period %ld ms)\n", server.address().c_str(), period_ms);
  std::printf("endpoints: /metrics /snapshot.json /series.json /healthz\n");
  std::fflush(stdout);
  if (!port_file.empty()) {
    // Atomic write: a watcher polling for this file never reads a torn
    // address (the CI smoke test does exactly that).
    robust::atomic_write_file(port_file,
                              [&](std::ostream& os) { os << server.address() << '\n'; });
  }

  const double alpha = 2.0;
  const int k = 8;
  long round = 0;
  while (g_stop == 0 && (rounds == 0 || round < rounds)) {
    simulate_round(round, alpha, k);
    ++round;
    for (long slept = 0; g_stop == 0 && slept < round_sleep_ms; slept += 10) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }

  server.stop();
  hub.stop();
  std::printf("clean shutdown after %ld rounds (%llu scrapes served)\n", round,
              static_cast<unsigned long long>(server.requests()));
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: datacenter_cluster [--serve-metrics BIND] [--port-file FILE]\n"
               "                          [--rounds N] [--period-ms N] [--round-sleep-ms N]\n"
               "                          [--telemetry-jsonl FILE]\n"
               "  (no flags: the one-shot Section 6 demo)\n"
               "  BIND: \"HOST:PORT\", bare \"PORT\" (0 = ephemeral), or \"unix:PATH\"\n"
               "  --rounds 0 (default) simulates until SIGINT/SIGTERM\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string bind, port_file, jsonl_path;
  long rounds = 0, period_ms = 200, round_sleep_ms = 100;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--serve-metrics" && i + 1 < argc) {
      serve = true;
      bind = argv[++i];
    } else if (arg == "--port-file" && i + 1 < argc) {
      port_file = argv[++i];
    } else if (arg == "--rounds" && i + 1 < argc) {
      rounds = std::atol(argv[++i]);
    } else if (arg == "--period-ms" && i + 1 < argc) {
      period_ms = std::atol(argv[++i]);
    } else if (arg == "--round-sleep-ms" && i + 1 < argc) {
      round_sleep_ms = std::atol(argv[++i]);
    } else if (arg == "--telemetry-jsonl" && i + 1 < argc) {
      jsonl_path = argv[++i];
    } else {
      return usage();
    }
  }
  if (!serve) return run_demo();
  if (period_ms < 1 || round_sleep_ms < 0 || rounds < 0) return usage();
  return run_serve(bind, port_file, rounds, period_ms, round_sleep_ms, jsonl_path);
}
